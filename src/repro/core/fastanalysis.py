"""Vectorized analysis kernels for the two locality models.

The scalar implementations — :class:`~repro.core.affinity.AffinityAnalysis`
(the one-pass w-window stack simulation of paper Sec. II-B) and
:func:`~repro.core.trg.build_trg` (the Gloy-Smith 2C-window graph of
Sec. II-C) — walk the trace one access at a time with per-access Python
object churn: `_Pending` records and dict walks on the affinity side, a
linked-list stack and dict-of-tuples accumulation on the TRG side.  On
realistic traces the layout build dominates end-to-end wall time.

This module re-derives both analyses as *batched* kernels in the same
mold as :mod:`repro.cache.fastsim`: a single lean Python pass records
compact event logs (flat int lists, a reusable boundary buffer, a
move-to-front list indexed at C speed), and everything per-pair — minimal
footprints, coverage histograms, edge weights — is aggregated at the end
with NumPy sort/unique passes.  The scalar implementations stay as the
oracles; the parity matrix in ``tests/core/test_fastanalysis.py`` pins
the kernels **bit-identical** (same coverage histograms, same affine-pair
sets, same TRG edge weights and node order) across trace shapes, window
ranges, horizons, and stack capacities.

Why the affinity kernel needs no pending queue: over a trimmed trace a
pending occurrence's *time is its trace index*, so the pending set is
always the contiguous index range ``[head, now)`` — a single advancing
head pointer replaces the deque.  Finalization ("more than ``w_max``
distinct blocks accessed since") advances ``head`` past the last-access
time of the ``w_max``-th most recent *other* block, which the per-access
boundary walk has already produced — the scalar version's separate
``_kth_most_recent`` walk disappears.  Forward credits are emitted as
``(partner, lo, hi)`` ranges plus a flat footprint list; backward records
as a flat partner list with per-access counts.  The final NumPy
aggregation takes the per-(occurrence, partner) minimum footprint with
one ``lexsort`` and folds the per-pair histograms with one ``unique``.
"""

from __future__ import annotations

from array import array
from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..trace.trim import trim
from .affinity import AffinityAnalysis
from .trg import TRG

__all__ = [
    "AffinityCoverage",
    "affinity_coverage",
    "analysis_from_coverage",
    "build_trg_fast",
    "coverage_from_analysis",
    "trg_from_payload",
    "trg_to_payload",
]


@dataclass(eq=False)
class AffinityCoverage:
    """Everything one affinity pass derives from a trace.

    The content-addressed analysis artifact: per-pair minimal-footprint
    histograms plus the occurrence bookkeeping, independent of the
    ``coverage`` query threshold (which :meth:`AffinityAnalysis.is_affine`
    applies at lookup time).  One artifact therefore answers every
    coverage setting of its ``(stream, w_max, time_horizon)`` cell,
    which is what makes it worth memoizing.
    """

    w_max: int
    time_horizon: Optional[int]
    #: occurrence count per symbol.
    n_occ: dict[int, int]
    #: first trimmed-trace index per symbol.
    first_occ: dict[int, int]
    #: (x, y) -> length-(w_max+1) int64 histogram of minimal footprints of
    #: x-occurrences toward y (exactly ``AffinityAnalysis._cov``).
    cov: dict[tuple[int, int], np.ndarray]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, AffinityCoverage):
            return NotImplemented
        return (
            self.w_max == other.w_max
            and self.time_horizon == other.time_horizon
            and self.n_occ == other.n_occ
            and self.first_occ == other.first_occ
            and self.cov.keys() == other.cov.keys()
            and all(np.array_equal(h, other.cov[k]) for k, h in self.cov.items())
        )

    def to_dict(self) -> dict:
        """JSON-able form (memo entries, process boundaries)."""
        return {
            "kind": "affinity",
            "w_max": int(self.w_max),
            "time_horizon": self.time_horizon,
            "n_occ": {str(k): int(v) for k, v in self.n_occ.items()},
            "first_occ": {str(k): int(v) for k, v in self.first_occ.items()},
            "cov": {
                f"{x},{y}": hist.tolist() for (x, y), hist in self.cov.items()
            },
        }

    @classmethod
    def from_dict(cls, raw: dict) -> "AffinityCoverage":
        """Inverse of :meth:`to_dict`; raises ``ValueError`` on malformed
        payloads so memo corruption degrades to recomputation."""
        if raw.get("kind") != "affinity":
            raise ValueError(f"not an affinity payload: kind={raw.get('kind')!r}")
        w_max = int(raw["w_max"])
        horizon = raw["time_horizon"]
        cov: dict[tuple[int, int], np.ndarray] = {}
        for key, hist in raw["cov"].items():
            x, y = key.split(",")
            arr = np.asarray(hist, dtype=np.int64)
            if arr.shape != (w_max + 1,):
                raise ValueError(f"histogram shape {arr.shape} != ({w_max + 1},)")
            cov[(int(x), int(y))] = arr
        return cls(
            w_max=w_max,
            time_horizon=None if horizon is None else int(horizon),
            n_occ={int(k): int(v) for k, v in raw["n_occ"].items()},
            first_occ={int(k): int(v) for k, v in raw["first_occ"].items()},
            cov=cov,
        )


def coverage_from_analysis(
    analysis: AffinityAnalysis, time_horizon: Optional[int] = None
) -> AffinityCoverage:
    """Extract the coverage artifact from a scalar analysis (oracle side
    of the parity tests and the ``analysis-bench`` gate)."""
    return AffinityCoverage(
        w_max=analysis.w_max,
        time_horizon=time_horizon,
        n_occ=dict(analysis._n_occ),
        first_occ=dict(analysis._first_occ),
        cov={k: v.copy() for k, v in analysis._cov.items()},
    )


def analysis_from_coverage(
    trace: np.ndarray, covg: AffinityCoverage, coverage: float = 1.0
) -> AffinityAnalysis:
    """Wrap a kernel- or memo-produced artifact as an
    :class:`AffinityAnalysis`, sharing all query/hierarchy code paths."""
    return AffinityAnalysis.from_precomputed(
        trace,
        w_max=covg.w_max,
        coverage=coverage,
        n_occ=covg.n_occ,
        first_occ=covg.first_occ,
        cov=covg.cov,
    )


#: entry caps for the linear (sort-free) aggregation path: the join
#: table holds one byte per (trace index, symbol) cell and the pair-row
#: table one int32 per symbol pair.  Above either cap — or when
#: footprints would not fit the int8 join table — the kernel falls back
#: to an equivalent sort-based merge (still exact, just slower).
_JOIN_TABLE_MAX = 1 << 28
_PAIR_TABLE_MAX = 1 << 24


def _recency_records(
    ids: list[int], n_syms: int, K: int, with_pos: bool
) -> tuple["array", "array", "array"]:
    """One move-to-front pass emitting, per access, the ``K`` most
    recently seen *other* symbols in recency order.

    Returns ``(partners, counts, positions)`` as ``array('i')`` buffers
    (NumPy reads them zero-copy): flat partner ids, the per-access
    record counts, and (when ``with_pos``) the partners' last-access
    indices, parallel to ``partners``.  The partner at slice offset k
    has stack depth k+2 (z itself is depth 1), i.e. the window from its
    last access to ``now`` spans k+2 distinct symbols.

    This is the whole affinity pass: run forward it yields the backward
    coverage records; run on the *reversed* trace it yields the forward
    credits (the reversed stack keeps each symbol's first upcoming
    occurrence, which is exactly the minimal forward window).

    The stack is kept *bounded* at K+1 entries: in a move-to-front list
    without evictions a symbol's depth never decreases until it is
    re-accessed, so anything that sinks past the window can never
    resurface into the top K and is simply dropped.  Every per-access
    operation is then O(K) C-level list machinery — a 20-element
    ``index``/``del``/``insert``/slice — with no per-record Python work.
    """
    cap = K + 1
    in_top = bytearray(n_syms)
    kept: list[int] = []  # compact ids, MRU first, top cap entries
    kpos: list[int] = []  # their last-access indices, parallel
    partners = array("i")
    counts = array("i")
    positions = array("i")
    emit = partners.extend
    emit_pos = positions.extend
    emit_cnt = counts.append
    if with_pos:
        for now, z in enumerate(ids):
            if in_top[z]:
                i = kept.index(z)
                del kept[i]
                del kpos[i]
            else:
                in_top[z] = 1
            m = len(kept)
            if m > K:
                emit(kept[:K])
                emit_pos(kpos[:K])
                emit_cnt(K)
            else:
                emit(kept)
                emit_pos(kpos)
                emit_cnt(m)
            kept.insert(0, z)
            kpos.insert(0, now)
            if len(kept) > cap:
                in_top[kept.pop()] = 0
                kpos.pop()
    else:
        for z in ids:
            if in_top[z]:
                del kept[kept.index(z)]
            else:
                in_top[z] = 1
            m = len(kept)
            if m > K:
                emit(kept[:K])
                emit_cnt(K)
            else:
                emit(kept)
                emit_cnt(m)
            kept.insert(0, z)
            if len(kept) > cap:
                in_top[kept.pop()] = 0
    return partners, counts, positions


def _recency_records_numpy(
    inv: np.ndarray, n_syms: int, K: int, with_pos: bool
) -> tuple["array", "array", "array"]:
    """Default (CPython) record pass: adapt :func:`_recency_records` to
    the array-in contract shared with the compiled tier."""
    return _recency_records(inv.tolist(), n_syms, K, with_pos)


def affinity_coverage(
    trace: np.ndarray,
    w_max: int = 20,
    time_horizon: Optional[int] = None,
    *,
    records_fn=None,
) -> AffinityCoverage:
    """Two batched passes computing the full 2..w_max coverage sweep.

    Bit-identical to ``AffinityAnalysis(trace, w_max, time_horizon=...)``
    (pinned by the parity suite), via a symmetry the scalar one-pass
    algorithm obscures: an occurrence's minimal *backward* window to
    partner y ends at y's most recent past occurrence with footprint =
    y's recency rank, and its minimal *forward* window ends at y's first
    upcoming occurrence — which is y's recency rank *on the reversed
    trace*.  The scalar version's pending queue, forward crediting, and
    finalization cutoffs exist only to discover the forward windows
    online; offline, one :func:`_recency_records` pass over the trace and
    one over its reversal produce every (occurrence, partner, footprint)
    record, and the w_max finalization horizon is exactly the fp <= w_max
    truncation both passes already apply.  A finite ``time_horizon``
    additionally drops forward credits whose arrival is more than
    ``time_horizon + 1`` steps after the occurrence — a vectorized filter
    here.  The per-(occurrence, partner) minimum and the per-pair
    histogram fold are NumPy sort/unique passes.

    ``records_fn`` swaps the event-pass implementation (the
    ``compiled`` tier of :mod:`repro.perf.backends` injects its JIT'd
    pass here): it takes ``(inv, n_syms, K, with_pos)`` with ``inv`` a
    compact-id array and returns the same three flat int32 buffers as
    :func:`_recency_records`.  The NumPy join/aggregation below is
    shared by every tier, so tiers differ only in how the records are
    produced — which is what keeps them structurally bit-identical.
    """
    if w_max < 1:
        raise ValueError("w_max must be >= 1")
    t = trim(np.asarray(trace))
    n = int(t.shape[0])
    if n == 0:
        return AffinityCoverage(w_max, time_horizon, {}, {}, {})

    syms, first_idx, inv = np.unique(t, return_index=True, return_inverse=True)
    n_syms = int(syms.shape[0])
    counts = np.bincount(inv, minlength=n_syms)
    n_occ = {int(s): int(c) for s, c in zip(syms, counts)}
    first_occ = {int(s): int(i) for s, i in zip(syms, first_idx)}

    K = w_max - 1
    records = records_fn if records_fn is not None else _recency_records_numpy
    bwd = records(inv, n_syms, K, False)
    fwd = records(inv[::-1], n_syms, K, time_horizon is not None)
    if len(bwd[0]) == 0 and len(fwd[0]) == 0:
        return AffinityCoverage(w_max, time_horizon, n_occ, first_occ, {})

    # The linear join path keeps everything in int32 and never sorts; it
    # applies whenever its scratch tables fit (always at paper scale).
    fast = (
        n * n_syms <= _JOIN_TABLE_MAX
        and n_syms * n_syms <= _PAIR_TABLE_MAX
        and w_max < 127
    )
    dt = np.int32 if fast else np.int64
    inv_dt = inv.astype(dt)
    mult = w_max + 1

    def expand(pass_out, occ_base, x_syms):
        """Per record: (occ*n_syms+partner) key, (x*n_syms+partner) pair
        code, and the footprint — all implicit in the slice layout."""
        part = np.frombuffer(pass_out[0], dtype=np.int32).astype(dt, copy=False)
        cnt = np.frombuffer(pass_out[1], dtype=np.int32)
        key = np.repeat(occ_base * n_syms, cnt) + part
        pcode = np.repeat(x_syms * n_syms, cnt) + part
        starts = np.cumsum(cnt, dtype=dt) - cnt
        d = np.arange(part.shape[0], dtype=dt) - np.repeat(starts, cnt) + 2
        return key, pcode, d

    key_b, pcode_b, d_b = expand(bwd, np.arange(n, dtype=dt), inv_dt)
    # The reversed pass indexes from the trace end; map back.
    key_f, pcode_f, d_f = expand(
        fwd, np.arange(n - 1, -1, -1, dtype=dt), inv_dt[::-1]
    )
    if time_horizon is not None and key_f.shape[0]:
        # Forward credits only reach occurrences still pending when the
        # partner arrives: the arrival (original index n-1-pos) must be
        # within time_horizon + 1 of the occurrence.
        cnt_f = np.frombuffer(fwd[1], dtype=np.int32)
        occ_f = np.repeat(np.arange(n - 1, -1, -1, dtype=dt), cnt_f)
        arrival = n - 1 - np.frombuffer(fwd[2], dtype=np.int32).astype(
            dt, copy=False
        )
        keep = arrival - occ_f <= time_horizon + 1
        key_f, pcode_f, d_f = key_f[keep], pcode_f[keep], d_f[keep]

    if fast:
        # Merge the two passes without sorting: backward (occ, partner)
        # keys are unique within their pass (one record per partner per
        # access), so a scatter into a byte table and one gather give
        # each forward record its backward counterpart.  A forward
        # record survives where there is none or it is strictly smaller
        # (ties go backward); a surviving forward record with a larger
        # backward counterpart cancels it.
        tab = np.zeros(n * n_syms, dtype=np.int8)
        tab[key_b] = d_b.astype(np.int8)
        dm = tab[key_f].astype(np.int32)
        keep_f = (dm == 0) | (d_f < dm)
        sub = keep_f & (dm != 0)
        pused = np.zeros(n_syms * n_syms, dtype=bool)
        pused[pcode_b] = True
        pused[pcode_f[keep_f]] = True
        rowmap = np.cumsum(pused, dtype=np.int32)
        rowmap -= 1
        n_pairs = int(rowmap[-1]) + 1
        pf_keep = rowmap[pcode_f[keep_f]].astype(np.int64)
        hist = np.bincount(
            rowmap[pcode_b].astype(np.int64) * mult + d_b,
            minlength=n_pairs * mult,
        )
        hist += np.bincount(pf_keep * mult + d_f[keep_f], minlength=n_pairs * mult)
        hist -= np.bincount(
            rowmap[pcode_f[sub]].astype(np.int64) * mult + dm[sub],
            minlength=n_pairs * mult,
        )
        block = hist.reshape(n_pairs, mult)
        pair_codes = np.nonzero(pused)[0]
    else:
        # Sort-based merge: minimal footprint per (occ, partner) = first
        # entry of each key run after a (key, d) sort; per-pair
        # histograms from one unique over (pair, d) codes.
        key = np.concatenate((key_b, key_f))
        pcode = np.concatenate((pcode_b, pcode_f))
        d = np.concatenate((d_b, d_f))
        if key.shape[0] == 0:
            return AffinityCoverage(w_max, time_horizon, n_occ, first_occ, {})
        order = np.lexsort((d, key))
        key_s = key[order]
        first = np.empty(key_s.shape[0], dtype=bool)
        first[0] = True
        np.not_equal(key_s[1:], key_s[:-1], out=first[1:])
        code = pcode[order][first] * mult + d[order][first]
        codes, cnt = np.unique(code, return_counts=True)
        pair_codes, row = np.unique(codes // mult, return_inverse=True)
        block = np.zeros((pair_codes.shape[0], mult), dtype=np.int64)
        block[row, codes % mult] = cnt

    xs = syms[pair_codes // n_syms].tolist()
    ys = syms[pair_codes % n_syms].tolist()
    cov = dict(zip(zip(xs, ys), block))
    return AffinityCoverage(w_max, time_horizon, n_occ, first_occ, cov)


def _trg_records(
    inv: np.ndarray, n_syms: int, window_blocks: Optional[int]
) -> tuple["array", "array", "array"]:
    """The TRG event pass: one bounded move-to-front walk emitting, per
    reuse at depth d, the reused id, the depth, and the d interleaved
    ids as flat int32 buffers (``(e_x, e_cnt, e_y)``)."""
    stack: list[int] = []  # compact ids, MRU first
    in_stack = bytearray(n_syms)
    e_x = array("i")  # per reuse: the reused id ...
    e_cnt = array("i")  # ... its depth (= number of interleaved ids) ...
    e_y = array("i")  # ... and the interleaved ids, flat
    emit_x = e_x.append
    emit_cnt = e_cnt.append
    emit_y = e_y.extend
    for x in inv.tolist():
        if in_stack[x]:
            d = stack.index(x)
            if d:
                emit_x(x)
                emit_cnt(d)
                emit_y(stack[:d])
                del stack[d]
                stack.insert(0, x)
        else:
            in_stack[x] = 1
            stack.insert(0, x)
            if window_blocks is not None and len(stack) > window_blocks:
                in_stack[stack.pop()] = 0
    return e_x, e_cnt, e_y


def build_trg_fast(
    trace: np.ndarray,
    window_blocks: Optional[int] = None,
    *,
    records_fn=None,
) -> TRG:
    """Vectorized TRG construction, bit-identical to
    :func:`~repro.core.trg.build_trg`.

    The bounded move-to-front pass runs on a plain Python list of compact
    symbol ids (``list.index`` / slice / ``insert`` at C speed, with a
    byte-array membership test instead of a hash walk); each reuse at
    depth d appends its d-1 interleaved ids to a flat pair log.  Edge
    weights fall out of one ``np.unique`` over the encoded (min, max)
    pairs — no per-conflict dict updates.

    ``records_fn`` swaps the event pass (same contract as
    :func:`_trg_records`; the ``compiled`` backend tier injects its
    JIT'd pass) while the weight aggregation below stays shared.
    """
    if window_blocks is not None and window_blocks <= 0:
        raise ValueError("capacity must be positive or None")
    t = trim(np.asarray(trace))
    trg = TRG()
    n = int(t.shape[0])
    if n == 0:
        return trg
    syms, first_idx, inv = np.unique(t, return_index=True, return_inverse=True)
    n_syms = int(syms.shape[0])
    trg.nodes = [int(syms[i]) for i in np.argsort(first_idx, kind="stable")]

    records = records_fn if records_fn is not None else _trg_records
    e_x, e_cnt, e_y = records(inv, n_syms, window_blocks)

    if len(e_y):
        xs = np.repeat(
            np.frombuffer(e_x, dtype=np.int32).astype(np.int64),
            np.frombuffer(e_cnt, dtype=np.int32),
        )
        ys = np.frombuffer(e_y, dtype=np.int32)
        code = np.minimum(xs, ys) * n_syms + np.maximum(xs, ys)
        if n_syms * n_syms <= _PAIR_TABLE_MAX:
            # Direct scatter-count — no sort needed; the code space is
            # dense enough that a bincount over it beats unique.
            w_all = np.bincount(code, minlength=n_syms * n_syms)
            codes = np.nonzero(w_all)[0]
            cnt = w_all[codes]
        else:
            codes, cnt = np.unique(code, return_counts=True)
        ex = syms[codes // n_syms].tolist()
        ey = syms[codes % n_syms].tolist()
        trg.weights = dict(zip(zip(ex, ey), cnt.tolist()))
    return trg


def trg_to_payload(trg: TRG, window_blocks: Optional[int] = None) -> dict:
    """JSON-able form of a TRG (memo entries, process boundaries)."""
    return {
        "kind": "trg",
        "window_blocks": window_blocks,
        "nodes": [int(x) for x in trg.nodes],
        "weights": {f"{x},{y}": int(w) for (x, y), w in trg.weights.items()},
    }


def trg_from_payload(raw: dict) -> TRG:
    """Inverse of :func:`trg_to_payload`; always a fresh ``TRG`` (callers
    may hand it to mutating consumers).  Raises ``ValueError`` on
    malformed payloads so memo corruption degrades to recomputation."""
    if raw.get("kind") != "trg":
        raise ValueError(f"not a TRG payload: kind={raw.get('kind')!r}")
    weights: dict[tuple[int, int], int] = {}
    for key, w in raw["weights"].items():
        x, y = key.split(",")
        weights[(int(x), int(y))] = int(w)
    return TRG(weights=weights, nodes=[int(x) for x in raw["nodes"]])
