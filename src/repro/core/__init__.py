"""The paper's contribution: affinity and TRG models, layout optimizers,
and the defensiveness/politeness goal framework."""

from .affinity import AffinityAnalysis, affine_pairs_naive, window_footprint
from .fastanalysis import (
    AffinityCoverage,
    affinity_coverage,
    analysis_from_coverage,
    build_trg_fast,
    coverage_from_analysis,
)
from .goals import GoalScores, relative_reduction, score_goals
from .hierarchy import AffinityNode, build_hierarchy, hierarchy_levels, layout_order
from .layout import Granularity, apply_symbol_order
from .linkaffinity import is_link_affinity_group, link_affinity_partition
from .optimizers import (
    COMPARATORS,
    OPTIMIZERS,
    Model,
    OptimizerConfig,
    bb_affinity,
    bb_trg,
    function_affinity,
    function_trg,
    optimize,
)
from .pettis_hansen import pettis_hansen_order, transition_graph
from .splitting import hot_cold_order, hot_cold_split
from .trg import TRG, build_trg, trg_window_blocks, uniform_block_slots
from .trg_reduce import ReductionResult, reduce_trg

__all__ = [
    "COMPARATORS",
    "OPTIMIZERS",
    "TRG",
    "AffinityAnalysis",
    "AffinityCoverage",
    "AffinityNode",
    "GoalScores",
    "Granularity",
    "Model",
    "OptimizerConfig",
    "ReductionResult",
    "affine_pairs_naive",
    "affinity_coverage",
    "analysis_from_coverage",
    "apply_symbol_order",
    "bb_affinity",
    "bb_trg",
    "build_hierarchy",
    "build_trg",
    "build_trg_fast",
    "coverage_from_analysis",
    "function_affinity",
    "function_trg",
    "hierarchy_levels",
    "hot_cold_order",
    "hot_cold_split",
    "is_link_affinity_group",
    "layout_order",
    "link_affinity_partition",
    "optimize",
    "pettis_hansen_order",
    "reduce_trg",
    "relative_reduction",
    "score_goals",
    "transition_graph",
    "trg_window_blocks",
    "uniform_block_slots",
    "window_footprint",
]
