"""TRG reduction (paper Algorithm 2): conflict-driven slot assignment.

The paper adapts Gloy & Smith's placement into a pure *reordering*: the
cache is viewed as K code slots (:func:`repro.core.trg.uniform_block_slots`)
and blocks are assigned to slots heaviest-conflict-edge first:

1. repeatedly take the heaviest edge <A, B> whose endpoint(s) are unplaced;
2. an unplaced endpoint picks the first *empty* slot if one exists,
   otherwise the slot whose (merged) resident node has the **least**
   recorded conflict weight with it — slots with *no recorded edge* are not
   candidates (no temporal relation means no information; this matches the
   paper's worked example, Fig. 2, where C joins E's slot despite their
   30-weight edge because C has no edges to the other slots);
3. the placed block merges with the slot's resident supernode: their edges
   combine (weights to common neighbours add), and the block's edges to
   *other* slot supernodes are removed (different slot = no conflict);
4. when no actionable edge remains, blocks that never gained an edge are
   appended to the emptiest slots in trace order;
5. the output sequence round-robins over the slot lists, popping one head
   per non-empty slot per round — for the paper's Fig. 2 instance this
   yields exactly ``A B E F C``.

Determinism: heaviest-edge ties break on the ascending node pair; "first
empty slot" follows slot index order.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field

from .trg import TRG

__all__ = ["ReductionResult", "reduce_trg"]


@dataclass
class ReductionResult:
    """Outcome of one TRG reduction."""

    #: final block sequence (round-robin over slots).
    order: list[int]
    #: slot contents, in placement order, before the round-robin emission.
    slots: list[list[int]]
    #: blocks appended in step 4 (no conflict information).
    unconstrained: list[int] = field(default_factory=list)


class _SuperNodes:
    """Union-find over blocks with per-representative adjacency maps."""

    def __init__(self, nodes: list[int], trg: TRG):
        self.parent: dict[int, int] = {n: n for n in nodes}
        self.adj: dict[int, dict[int, int]] = {n: {} for n in nodes}
        for (x, y), w in trg.weights.items():
            self.adj[x][y] = w
            self.adj[y][x] = w

    def find(self, x: int) -> int:
        parent = self.parent
        root = x
        while parent[root] != root:
            root = parent[root]
        while parent[x] != root:
            parent[x], x = root, parent[x]
        return root

    def weight(self, a: int, b: int) -> int:
        ra, rb = self.find(a), self.find(b)
        return self.adj[ra].get(rb, 0)

    def has_edge(self, a: int, b: int) -> bool:
        ra, rb = self.find(a), self.find(b)
        return rb in self.adj[ra]

    def remove_edge(self, a: int, b: int) -> None:
        ra, rb = self.find(a), self.find(b)
        self.adj[ra].pop(rb, None)
        self.adj[rb].pop(ra, None)

    def merge(self, a: int, b: int) -> int:
        """Merge b's supernode into a's; edge weights to common peers add."""
        ra, rb = self.find(a), self.find(b)
        if ra == rb:
            return ra
        self.parent[rb] = ra
        adj_a = self.adj[ra]
        for peer, w in self.adj.pop(rb).items():
            if peer == ra:
                continue
            peer_adj = self.adj[self.find(peer)]
            peer_adj.pop(rb, None)
            new_w = adj_a.get(peer, 0) + w
            adj_a[peer] = new_w
            peer_adj[ra] = new_w
        adj_a.pop(rb, None)
        return ra


def reduce_trg(trg: TRG, n_slots: int) -> ReductionResult:
    """Run Algorithm 2 on ``trg`` with ``n_slots`` code slots."""
    if n_slots < 1:
        raise ValueError("need at least one slot")

    nodes = list(trg.nodes)
    sn = _SuperNodes(nodes, trg)
    slots: list[list[int]] = [[] for _ in range(n_slots)]
    #: representative supernode of each slot (None while empty).
    slot_rep: list[int | None] = [None] * n_slots
    placed: set[int] = set()

    # Lazy max-heap of candidate edges; entries are revalidated on pop
    # against the current supernode adjacency.
    heap: list[tuple[int, int, int]] = [
        (-w, x, y) for (x, y), w in trg.weights.items()
    ]
    heapq.heapify(heap)

    def place(block: int) -> None:
        """Steps 4-22 of Algorithm 2 for one unplaced endpoint."""
        target = None
        for k in range(n_slots):
            if slot_rep[k] is None:
                target = k
                break
        if target is None:
            best_w = None
            for k in range(n_slots):
                rep = slot_rep[k]
                assert rep is not None
                if not sn.has_edge(block, rep):
                    continue  # no temporal relation -> not a candidate
                w = sn.weight(block, rep)
                if best_w is None or w < best_w:
                    best_w = w
                    target = k
            if target is None:
                # No slot has conflict information; fall back to the
                # emptiest slot (stable under ties).
                target = min(range(n_slots), key=lambda k: len(slots[k]))

        slots[target].append(block)
        placed.add(block)
        rep = slot_rep[target]
        if rep is None:
            slot_rep[target] = sn.find(block)
        else:
            new_rep = sn.merge(rep, block)
            slot_rep[target] = new_rep
            for k in range(n_slots):
                if k != target and slot_rep[k] is not None:
                    if sn.find(slot_rep[k]) != new_rep:
                        slot_rep[k] = sn.find(slot_rep[k])
        # Remove edges between this block's slot node and the other slots.
        for k in range(n_slots):
            if k == target:
                continue
            other = slot_rep[k]
            if other is not None:
                sn.remove_edge(block, other)

    while heap:
        neg_w, x, y = heapq.heappop(heap)
        # Revalidate: the edge is actionable only if an endpoint is
        # unplaced and the weight is current.
        if x in placed and y in placed:
            continue
        current = sn.weight(x, y) if sn.find(x) != sn.find(y) else 0
        if current != -neg_w:
            if current > 0 and (x not in placed or y not in placed):
                heapq.heappush(heap, (-current, x, y))
            continue
        if x not in placed:
            place(x)
        if y not in placed:
            place(y)

    unconstrained = [n for n in nodes if n not in placed]
    for block in unconstrained:
        target = min(range(n_slots), key=lambda k: len(slots[k]))
        slots[target].append(block)

    # Round-robin emission (steps 25-29, repeated until all lists drain).
    order: list[int] = []
    cursors = [0] * n_slots
    remaining = sum(len(s) for s in slots)
    while remaining:
        for k in range(n_slots):
            if cursors[k] < len(slots[k]):
                order.append(slots[k][cursors[k]])
                cursors[k] += 1
                remaining -= 1
    return ReductionResult(order=order, slots=slots, unconstrained=unconstrained)
