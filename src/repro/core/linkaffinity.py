"""The original link-based reference affinity (Zhong et al.), as a
reference model.

The paper's w-window affinity (Sec. II-B) deliberately deviates from the
original definition: "W-window affinity differs from the original
definition, which uses the concept of a link.  In link-based affinity, the
window size is proportional to the size of an affinity group and not
constant.  As a result, the partition is unique in link-based affinity but
not in w-window affinity." — and the original is NP-hard to analyse in
general, which is why the paper adopts the windowed variant for
whole-program use.

This module implements the original definition directly, for small traces:

* two accesses are **k-linked** if the volume distance (number of distinct
  elements accessed between them, endpoints inclusive — the same quantity
  as the paper's window footprint) is at most ``k``;
* a set G is a **k-affinity group** if, for *every* occurrence of every
  member x and every other member y, there is some occurrence of y
  connected to that occurrence of x through a chain of member occurrences
  whose consecutive pairs are k-linked;
* the **strict affinity partition** at k is the set of maximal such groups
  (unique, unlike the w-window partition).

Complexity is exponential-ish in the alphabet (subset checking), so this is
a test oracle and comparison baseline (see the ablations), never a
production pass — exactly the situation the paper describes for structure
splitting with up to 14 fields.
"""

from __future__ import annotations

from itertools import combinations

import numpy as np

from ..trace.trim import trim
from .affinity import window_footprint

__all__ = ["is_link_affinity_group", "link_affinity_partition"]


def _occurrences(trace: np.ndarray) -> dict[int, list[int]]:
    occ: dict[int, list[int]] = {}
    for i, x in enumerate(trace.tolist()):
        occ.setdefault(x, []).append(i)
    return occ


def _linked(trace: np.ndarray, i: int, j: int, k: int) -> bool:
    return window_footprint(trace, i, j) <= k


def is_link_affinity_group(trace: np.ndarray, group: set[int], k: int) -> bool:
    """Check the original definition for one candidate group.

    For every occurrence ``o`` of every member, a breadth-first search over
    k-linked member occurrences must reach *all* members of the group.
    """
    t = trim(np.asarray(trace))
    occ = _occurrences(t)
    if not group <= set(occ):
        return False
    if len(group) <= 1:
        return True
    member_positions = sorted(
        (pos, sym) for sym in group for pos in occ[sym]
    )
    positions = [p for p, _ in member_positions]
    symbols = [s for _, s in member_positions]

    for start_idx in range(len(positions)):
        reached = {symbols[start_idx]}
        frontier = [start_idx]
        seen = {start_idx}
        while frontier and reached != group:
            cur = frontier.pop()
            for nxt in range(len(positions)):
                if nxt in seen:
                    continue
                if _linked(t, positions[cur], positions[nxt], k):
                    seen.add(nxt)
                    reached.add(symbols[nxt])
                    frontier.append(nxt)
        if reached != group:
            return False
    return True


def link_affinity_partition(trace: np.ndarray, k: int) -> list[set[int]]:
    """The unique strict affinity partition at link length ``k``.

    Built bottom-up: start from singletons and repeatedly merge any two
    groups whose union still satisfies the definition.  Zhong et al. prove
    the strict groups form a partition (consistent, unique), so greedy
    merging order does not affect the result for valid inputs; the test
    suite checks order independence on random traces.
    """
    t = trim(np.asarray(trace))
    symbols = sorted(set(t.tolist()))
    groups: list[set[int]] = [{s} for s in symbols]
    changed = True
    while changed:
        changed = False
        for a, b in combinations(range(len(groups)), 2):
            union = groups[a] | groups[b]
            if is_link_affinity_group(t, union, k):
                merged = [g for i, g in enumerate(groups) if i not in (a, b)]
                merged.append(union)
                groups = merged
                changed = True
                break
    return sorted(groups, key=lambda g: min(g))
