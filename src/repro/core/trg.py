"""Temporal Relationship Graph construction (paper Sec. II-C, Def. 6).

The TRG is a weighted undirected graph over code blocks.  The weight of
edge (X, Y) counts *potential conflicts*: the number of times two
successive occurrences of one block are interleaved by at least one
occurrence of the other (Gloy & Smith's temporal-ordering information).

Construction runs a bounded LRU stack over the trimmed trace: when X is
re-accessed and found at stack depth d, the d-1 distinct blocks above it
are exactly those that occurred between X's two successive occurrences —
each of their edges to X gains one conflict.  The stack capacity bounds the
examined window: Gloy & Smith recommend a window of **twice** the cache
size, so the default capacity is ``2 * C / S`` blocks for uniform block
size S (the paper keeps the uniform-size assumption because its compiler
sees IR, not binary sizes).  A reuse that spans more than the window is a
certain miss regardless of layout, so it records no conflicts.

Complexity: O(N * Q) for trace length N and stack capacity Q, matching the
paper's statement.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from ..cache.config import CacheConfig
from ..trace.stack import LRUStack
from ..trace.trim import trim

__all__ = ["TRG", "build_trg", "trg_window_blocks", "uniform_block_slots"]


@dataclass
class TRG:
    """Weighted undirected conflict graph."""

    #: edge weights, keyed by (min(x, y), max(x, y)).
    weights: dict[tuple[int, int], int] = field(default_factory=dict)
    #: every block observed in the trace, by first occurrence.
    nodes: list[int] = field(default_factory=list)

    def weight(self, x: int, y: int) -> int:
        if x == y:
            return 0
        key = (x, y) if x < y else (y, x)
        return self.weights.get(key, 0)

    def add_conflict(self, x: int, y: int, amount: int = 1) -> None:
        if amount <= 0:
            raise ValueError(f"conflict amount must be positive, got {amount}")
        key = (x, y) if x < y else (y, x)
        self.weights[key] = self.weights.get(key, 0) + amount

    def edges_by_weight(self) -> list[tuple[int, int, int]]:
        """(x, y, weight) sorted heaviest first; ties by node pair ascending."""
        return sorted(
            ((x, y, w) for (x, y), w in self.weights.items()),
            key=lambda e: (-e[2], e[0], e[1]),
        )

    @property
    def n_edges(self) -> int:
        return len(self.weights)


def trg_window_blocks(cfg: CacheConfig, block_size: int, factor: float = 2.0) -> int:
    """Stack capacity (in blocks) for the Gloy-Smith window of ``factor * C``.

    ``factor`` may be fractional — the window-sensitivity ablation sweeps
    sub-capacity windows to expose the model's fragility.
    """
    if block_size <= 0:
        raise ValueError("block size must be positive")
    if factor <= 0:
        raise ValueError("window factor must be positive")
    return max(1, int(factor * cfg.size_bytes) // block_size)


def uniform_block_slots(cfg: CacheConfig, block_size: int) -> int:
    """Number of code slots K under the uniform-block-size assumption.

    A block of size S occupies ``ceil(S / (A*B))`` cache sets out of
    ``C / (A*B)`` total, giving ``(C/(A*B)) / ceil(S/(A*B))`` slots
    (paper Sec. II-C).
    """
    if block_size <= 0:
        raise ValueError("block size must be positive")
    set_bytes = cfg.assoc * cfg.line_bytes
    sets_total = cfg.size_bytes // set_bytes
    sets_per_block = -(-block_size // set_bytes)  # ceil
    return max(1, sets_total // sets_per_block)


def build_trg(trace: np.ndarray, window_blocks: Optional[int] = None) -> TRG:
    """Construct the TRG of a (trimmed) block trace.

    ``window_blocks`` bounds the co-occurrence window in distinct blocks;
    ``None`` means unbounded (every reuse records its interleavings).
    """
    t = trim(np.asarray(trace))
    trg = TRG()
    seen: set[int] = set()
    stack = LRUStack(capacity=window_blocks)
    add = trg.add_conflict
    for x in t.tolist():
        if x not in seen:
            seen.add(x)
            trg.nodes.append(x)
        between = stack.walk_until(x, limit=window_blocks)
        if between is not None:
            for y in between:
                add(x, y)
        stack.touch(x)
    return trg
