"""Affinity hierarchy construction and layout emission (paper Sec. II-B).

Sweeping the window size w from small to large yields a hierarchy of
affinity partitions (paper Def. 5 / Fig. 1): at the bottom every block is
its own group; as w grows, groups merge.  Lower-level (smaller-w) groups
take precedence — once formed, a group is treated as an atomic unit when
larger windows are considered, exactly the "incremental" reading of the
paper's Algorithm 1.

The result is a dendrogram (:class:`AffinityNode` forest).  The optimized
code sequence is its bottom-up traversal: children are kept in order of
their earliest first occurrence in the trace, and the leaves are emitted by
DFS — for the paper's Fig. 1 trace this reproduces the published sequence
``B1 B4 B2 B3 B5``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional, Sequence

from .affinity import AffinityAnalysis

__all__ = ["AffinityNode", "build_hierarchy", "layout_order", "hierarchy_levels"]


@dataclass
class AffinityNode:
    """A node of the affinity dendrogram.

    Leaves carry a single block (``symbol``); internal nodes carry the
    window size ``w`` at which their children merged.
    """

    #: window size that formed this node (0 for leaves).
    w: int
    children: list["AffinityNode"] = field(default_factory=list)
    symbol: Optional[int] = None
    #: earliest first-occurrence among member blocks (ordering key).
    first_occ: int = 0

    @property
    def is_leaf(self) -> bool:
        return self.symbol is not None

    def members(self) -> list[int]:
        """All block symbols under this node, in emission order."""
        if self.is_leaf:
            return [self.symbol]  # type: ignore[list-item]
        out: list[int] = []
        for child in self.children:
            out.extend(child.members())
        return out

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        if self.is_leaf:
            return f"Leaf({self.symbol})"
        return f"Node(w={self.w}, members={self.members()})"


def build_hierarchy(
    analysis: AffinityAnalysis, w_values: Optional[Sequence[int]] = None
) -> list[AffinityNode]:
    """Build the affinity dendrogram forest for the analysed trace.

    ``w_values`` defaults to ``2 .. analysis.w_max`` (w=1 never groups
    anything in a trimmed trace: two blocks in a window of footprint 1 is
    impossible).  Values must be ascending.

    Greedy unit merging with lower-level precedence: at each w, existing
    units (initially singleton leaves, ordered by first occurrence) are
    scanned in order; each unit joins the first newly-formed group whose
    every member block is pairwise w-affine with every block of the unit,
    or starts a new group.  Groups with a single unit are dissolved back to
    the unit (no spurious unary nodes).
    """
    if w_values is None:
        w_values = range(2, analysis.w_max + 1)
    w_list = list(w_values)
    if any(b <= a for a, b in zip(w_list, w_list[1:])):
        raise ValueError("w_values must be strictly ascending")
    if w_list and w_list[-1] > analysis.w_max:
        raise ValueError("w_values exceed the analysed w_max")

    units: list[AffinityNode] = [
        AffinityNode(w=0, symbol=s, first_occ=analysis.first_occurrence(s))
        for s in analysis.symbols
    ]

    for w in w_list:
        if len(units) <= 1:
            break
        groups: list[list[AffinityNode]] = []
        for unit in units:
            unit_members = unit.members()
            placed = False
            for group in groups:
                if all(
                    analysis.is_affine(a, b, w)
                    for node in group
                    for a in node.members()
                    for b in unit_members
                ):
                    group.append(unit)
                    placed = True
                    break
            if not placed:
                groups.append([unit])
        new_units: list[AffinityNode] = []
        for group in groups:
            if len(group) == 1:
                new_units.append(group[0])
            else:
                group.sort(key=lambda node: node.first_occ)
                new_units.append(
                    AffinityNode(
                        w=w, children=group, first_occ=group[0].first_occ
                    )
                )
        units = new_units

    units.sort(key=lambda node: node.first_occ)
    return units


def layout_order(forest: Iterable[AffinityNode]) -> list[int]:
    """Optimized block sequence: bottom-up (DFS) traversal of the forest."""
    out: list[int] = []
    for node in forest:
        out.extend(node.members())
    return out


def hierarchy_levels(forest: Iterable[AffinityNode]) -> dict[int, list[list[int]]]:
    """Partition snapshots per w, for inspection and the Fig. 1 test.

    Returns ``{w: [group members ...]}`` for every w at which at least one
    merge happened, reconstructed from the dendrogram.
    """
    nodes: list[AffinityNode] = []

    def collect(n: AffinityNode) -> None:
        nodes.append(n)
        for child in n.children:
            collect(child)

    roots = list(forest)
    for r in roots:
        collect(r)
    ws = sorted({n.w for n in nodes if not n.is_leaf})
    levels: dict[int, list[list[int]]] = {}
    for w in ws:
        groups: list[list[int]] = []

        def cut(n: AffinityNode) -> None:
            if n.is_leaf or n.w > w:
                if n.is_leaf:
                    groups.append([n.symbol])  # type: ignore[list-item]
                else:
                    for child in n.children:
                        cut(child)
            else:
                groups.append(n.members())

        for r in roots:
            cut(r)
        levels[w] = groups
    return levels
