"""Hot/cold code splitting, as an extension and analysis baseline.

Function splitting (Pettis & Hansen's second technique; GCC's
``-freorder-blocks-and-partition``) moves rarely executed basic blocks out
of line: each function keeps its hot blocks in place and exiles cold
blocks to a far-away section.  It needs only execution counts — no
co-occurrence modeling at all.

In this reproduction it serves as an *ablation baseline* for the paper's
models: the difference between ``hotcold-split`` and ``bb-affinity``
measures what windowed co-occurrence modeling buys **beyond** plain
hot/cold segregation, which is the first question a reviewer of the paper
would ask.

The transform emits a gid order: for every function (in declaration
order), its hot blocks in declaration order; then every cold block, also
grouped by function.  Applying it through
:func:`repro.ir.transforms.reorder_basic_blocks` charges the same entry
stubs and explicit jumps as any inter-procedural reordering, so the
comparison against the paper's optimizers is cost-faithful.
"""

from __future__ import annotations

import numpy as np

from ..engine.instrument import TraceBundle
from ..ir.module import Module
from ..ir.transforms import LayoutResult, reorder_basic_blocks

__all__ = ["hot_cold_order", "hot_cold_split"]


def hot_cold_order(
    module: Module, bundle: TraceBundle, hot_fraction: float = 0.001
) -> list[int]:
    """gid order with cold blocks exiled behind all hot blocks.

    A block is *hot* if it accounts for at least ``hot_fraction`` of the
    dynamic block executions (0 keeps every executed block hot; blocks
    that never execute are always cold).
    """
    if not 0.0 <= hot_fraction <= 1.0:
        raise ValueError("hot_fraction must be in [0, 1]")
    counts = np.bincount(bundle.bb_trace, minlength=module.n_blocks)
    total = int(counts.sum())
    threshold = max(1, int(np.ceil(hot_fraction * total)))

    hot: list[int] = []
    cold: list[int] = []
    for block in module.iter_blocks():
        if counts[block.gid] >= threshold:
            hot.append(block.gid)
        else:
            cold.append(block.gid)
    return hot + cold


def hot_cold_split(
    module: Module,
    bundle: TraceBundle,
    config=None,  # signature-compatible with the optimizer registry
    hot_fraction: float = 0.001,
) -> LayoutResult:
    """Apply hot/cold splitting as a basic-block layout."""
    order = hot_cold_order(module, bundle, hot_fraction)
    return reorder_basic_blocks(
        module, order, note=f"hotcold-split(hot_fraction={hot_fraction})"
    )
