"""Granularity plumbing: model output sequences -> concrete layouts.

The locality models emit *symbol* sequences — function indices at function
granularity, block gids at basic-block granularity.  This module turns them
into :class:`~repro.ir.transforms.LayoutResult` objects via the two
transformations of Sec. II-D/E, filling in the blocks the (pruned) trace
never mentioned.
"""

from __future__ import annotations

from enum import Enum

from ..engine.instrument import TraceBundle
from ..ir.module import Module
from ..ir.transforms import LayoutResult, reorder_basic_blocks, reorder_functions

__all__ = ["Granularity", "apply_symbol_order"]


class Granularity(str, Enum):
    """What the locality model reorders."""

    FUNCTION = "function"
    BASIC_BLOCK = "bb"


def apply_symbol_order(
    module: Module,
    bundle: TraceBundle,
    order: list[int],
    granularity: Granularity,
    note: str = "",
) -> LayoutResult:
    """Materialize a model's symbol sequence as a code layout.

    At function granularity ``order`` holds function indices (per
    ``bundle.function_names``); at basic-block granularity it holds gids.
    Symbols missing from ``order`` (cold code the pruned trace dropped)
    keep their relative declaration order after the reordered portion.
    """
    if granularity is Granularity.FUNCTION:
        names = [bundle.function_names[i] for i in order]
        return reorder_functions(module, names, note=note)
    return reorder_basic_blocks(module, list(order), note=note)
