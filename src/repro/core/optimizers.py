"""The four code-layout optimizers (paper Sec. II-F).

Crossing two locality models with two granularities yields the paper's four
optimizers:

====================  =====================  ==========================
name                  model                  transformation
====================  =====================  ==========================
``function-affinity``  w-window affinity      function reordering
``bb-affinity``        w-window affinity      inter-procedural BB reorder
``function-trg``       TRG + reduction        function reordering
``bb-trg``             TRG + reduction        inter-procedural BB reorder
====================  =====================  ==========================

Each optimizer consumes an instrumented *test-input* trace
(:class:`~repro.engine.instrument.TraceBundle`) and the module, and emits a
:class:`~repro.ir.transforms.LayoutResult`.  The shared pipeline is: trim
the trace (Def. 1), prune to the most popular symbols (Sec. II-F), run the
model, expand the symbol order into a full layout.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Optional

import numpy as np

from ..cache.config import PAPER_L1I, CacheConfig
from ..engine.instrument import TraceBundle
from ..ir.module import Module
from ..ir.transforms import LayoutResult
from ..trace.prune import prune_top_k
from ..trace.trim import trim
from .affinity import AffinityAnalysis
from .fastanalysis import analysis_from_coverage
from .hierarchy import build_hierarchy, layout_order
from .layout import Granularity, apply_symbol_order
from .trg import build_trg, trg_window_blocks, uniform_block_slots
from .trg_reduce import reduce_trg

__all__ = [
    "Model",
    "OptimizerConfig",
    "analysis_cell",
    "optimize",
    "function_affinity",
    "bb_affinity",
    "function_trg",
    "bb_trg",
    "OPTIMIZERS",
]


class Model:
    """Locality model names.

    ``AFFINITY`` and ``TRG`` are the paper's two models; ``PH`` (Pettis-
    Hansen chain merging) and ``POPULARITY`` (hot-first frequency sort)
    are comparison baselines used by the extension experiments.
    """

    AFFINITY = "affinity"
    TRG = "trg"
    PH = "pettis-hansen"
    POPULARITY = "popularity"


@dataclass(frozen=True)
class OptimizerConfig:
    """Tunables shared by all four optimizers.

    Defaults follow the paper: affinity windows 2..20, strict coverage,
    top-10,000-block pruning, the 32KB/4-way/64B cache, and the
    Gloy-Smith window factor of 2.
    """

    #: affinity window range (paper: "we choose w between 2 and 20").
    w_min: int = 2
    w_max: int = 20
    #: fraction of occurrences that must be covered (1.0 = Definition 3).
    coverage: float = 1.0
    #: optional pending-occurrence time horizon for the affinity pass.
    affinity_time_horizon: Optional[int] = None
    #: popularity pruning: keep this many most-frequent symbols.
    prune_k: int = 10_000
    #: cache geometry used by the TRG slot computation.
    cache: CacheConfig = field(default=PAPER_L1I)
    #: TRG examines a window of ``trg_window_factor * cache size``.
    trg_window_factor: float = 2.0
    #: route the locality models through the vectorized kernels in
    #: :mod:`repro.core.fastanalysis` (parity-gated bit-identical to the
    #: scalar implementations; False forces the scalar oracles).
    use_fast_analysis: bool = True
    #: kernel backend tier for the fast-analysis path (``scalar`` /
    #: ``numpy`` / ``compiled``; see :mod:`repro.perf.backends`).  None
    #: resolves to the fastest tier available *where the analysis runs*
    #: — a worker without numba degrades a ``compiled`` request to
    #: ``numpy`` with bit-identical results.
    kernel_backend: Optional[str] = None

    def w_values(self) -> range:
        return range(self.w_min, self.w_max + 1)


def _prepare_trace(
    bundle: TraceBundle, granularity: Granularity, config: OptimizerConfig
) -> np.ndarray:
    raw = (
        bundle.func_trace
        if granularity is Granularity.FUNCTION
        else bundle.bb_trace
    )
    trimmed = trim(raw)
    return prune_top_k(trimmed, config.prune_k).trace


def _uniform_size(
    module: Module, bundle: TraceBundle, granularity: Granularity
) -> int:
    """The uniform code-block size S for the TRG slot computation.

    The paper assumes one size for every function/basic block because its
    compiler sees IR, not binaries; we take the mean encoded size at the
    chosen granularity, which keeps S faithful to the program at hand.
    """
    if granularity is Granularity.FUNCTION:
        sizes = [f.size_bytes for f in module.functions]
    else:
        sizes = module.block_sizes()
    return max(1, int(round(float(np.mean(sizes)))))


def _note_analysis(
    stats: Optional[dict], *, accesses: int, seconds: float, fresh: bool
) -> None:
    """Fold one model-analysis consumption into a caller's counter dict.

    ``cells`` counts every analysis an optimizer consumed; the
    passes/accesses/seconds throughput triple only advances when the
    analysis was actually (re)computed, and ``memo_hits`` when a memo
    replayed it.
    """
    if stats is None:
        return
    stats["analysis_cells"] = stats.get("analysis_cells", 0) + 1
    if fresh:
        stats["analysis_passes"] = stats.get("analysis_passes", 0) + 1
        stats["analysis_accesses"] = stats.get("analysis_accesses", 0) + accesses
        stats["analysis_seconds"] = stats.get("analysis_seconds", 0.0) + seconds
    else:
        stats["analysis_memo_hits"] = stats.get("analysis_memo_hits", 0) + 1


def _affinity_analysis(
    trace: np.ndarray, config: OptimizerConfig, memo, stats: Optional[dict]
) -> AffinityAnalysis:
    """The affinity model, through the kernel/memo when enabled."""
    if not config.use_fast_analysis:
        return AffinityAnalysis(
            trace,
            w_max=config.w_max,
            coverage=config.coverage,
            time_horizon=config.affinity_time_horizon,
        )
    from ..perf.backends import resolve_backend

    backend = resolve_backend(config.kernel_backend, strict=False)
    start = time.perf_counter()
    if memo is not None:
        misses_before = memo.misses
        covg = memo.affinity_coverage(
            trace,
            w_max=config.w_max,
            time_horizon=config.affinity_time_horizon,
            backend=backend,
        )
        fresh = memo.misses > misses_before
    else:
        covg = backend.affinity(
            trace, w_max=config.w_max, time_horizon=config.affinity_time_horizon
        )
        fresh = True
    _note_analysis(
        stats,
        accesses=int(trace.shape[0]),
        seconds=time.perf_counter() - start,
        fresh=fresh,
    )
    return analysis_from_coverage(trace, covg, coverage=config.coverage)


def _trg_analysis(
    trace: np.ndarray, window: int, config: OptimizerConfig, memo, stats
):
    """The TRG model, through the kernel/memo when enabled."""
    if not config.use_fast_analysis:
        return build_trg(trace, window_blocks=window)
    from ..perf.backends import resolve_backend

    backend = resolve_backend(config.kernel_backend, strict=False)
    start = time.perf_counter()
    if memo is not None:
        misses_before = memo.misses
        trg = memo.trg(trace, window_blocks=window, backend=backend)
        fresh = memo.misses > misses_before
    else:
        trg = backend.trg(trace, window_blocks=window)
        fresh = True
    _note_analysis(
        stats,
        accesses=int(trace.shape[0]),
        seconds=time.perf_counter() - start,
        fresh=fresh,
    )
    return trg


def analysis_cell(
    module: Module,
    bundle: TraceBundle,
    layout_name: str,
    config: OptimizerConfig = OptimizerConfig(),
) -> Optional[tuple]:
    """The kernel-analysis work item ``optimize()`` would need for one of
    the four model-driven optimizers: ``("affinity", trace, w_max,
    time_horizon)`` or ``("trg", trace, window_blocks)``.

    ``None`` for layouts without a precomputable model analysis.  Used by
    :meth:`repro.experiments.pipeline.Lab.precompute_layouts` and
    :func:`repro.perf.parallel.analysis_cells` to fan the expensive model
    passes across workers before the (serial, memo-hitting) layout
    builds.
    """
    spec = _OPTIMIZER_SPECS.get(layout_name)
    if spec is None:
        return None
    granularity, model = spec
    trace = _prepare_trace(bundle, granularity, config)
    if model == Model.AFFINITY:
        return ("affinity", trace, config.w_max, config.affinity_time_horizon)
    size = _uniform_size(module, bundle, granularity)
    window = trg_window_blocks(config.cache, size, config.trg_window_factor)
    return ("trg", trace, window)


def optimize(
    module: Module,
    bundle: TraceBundle,
    granularity: Granularity,
    model: str,
    config: OptimizerConfig = OptimizerConfig(),
    *,
    memo=None,
    stats: Optional[dict] = None,
) -> LayoutResult:
    """Run one of the four optimizers and return the new layout.

    ``memo`` (a :class:`repro.perf.memo.SimMemo`) replays identical
    model analyses from the content-addressed cache; ``stats`` collects
    ``analysis_*`` throughput counters.  Both are inert unless
    ``config.use_fast_analysis`` routes through the kernels, and neither
    ever changes the produced layout — the kernels are parity-gated
    bit-identical to the scalar models.
    """
    trace = _prepare_trace(bundle, granularity, config)
    if model == Model.AFFINITY:
        analysis = _affinity_analysis(trace, config, memo, stats)
        forest = build_hierarchy(analysis, config.w_values())
        order = layout_order(forest)
        note = f"affinity(w={config.w_min}..{config.w_max}, cov={config.coverage})"
    elif model == Model.TRG:
        size = _uniform_size(module, bundle, granularity)
        window = trg_window_blocks(config.cache, size, config.trg_window_factor)
        slots = uniform_block_slots(config.cache, size)
        trg = _trg_analysis(trace, window, config, memo, stats)
        order = reduce_trg(trg, slots).order
        note = f"trg(window={window} blocks, slots={slots}, S={size}B)"
    elif model == Model.PH:
        from .pettis_hansen import pettis_hansen_order

        order = pettis_hansen_order(trace)
        note = "pettis-hansen(chain merge on transition graph)"
    elif model == Model.POPULARITY:
        from ..trace.prune import popularity

        symbols, _counts = popularity(trace)
        order = [int(s) for s in symbols]
        note = "popularity(hot-first frequency sort)"
    else:
        raise ValueError(f"unknown model {model!r}")
    return apply_symbol_order(module, bundle, order, granularity, note=note)


def function_affinity(
    module: Module,
    bundle: TraceBundle,
    config: OptimizerConfig = OptimizerConfig(),
    *,
    memo=None,
    stats: Optional[dict] = None,
) -> LayoutResult:
    """Function reordering driven by w-window affinity."""
    return optimize(
        module, bundle, Granularity.FUNCTION, Model.AFFINITY, config,
        memo=memo, stats=stats,
    )


def bb_affinity(
    module: Module,
    bundle: TraceBundle,
    config: OptimizerConfig = OptimizerConfig(),
    *,
    memo=None,
    stats: Optional[dict] = None,
) -> LayoutResult:
    """Inter-procedural basic-block reordering driven by w-window affinity."""
    return optimize(
        module, bundle, Granularity.BASIC_BLOCK, Model.AFFINITY, config,
        memo=memo, stats=stats,
    )


def function_trg(
    module: Module,
    bundle: TraceBundle,
    config: OptimizerConfig = OptimizerConfig(),
    *,
    memo=None,
    stats: Optional[dict] = None,
) -> LayoutResult:
    """Function reordering driven by TRG reduction."""
    return optimize(
        module, bundle, Granularity.FUNCTION, Model.TRG, config,
        memo=memo, stats=stats,
    )


def bb_trg(
    module: Module,
    bundle: TraceBundle,
    config: OptimizerConfig = OptimizerConfig(),
    *,
    memo=None,
    stats: Optional[dict] = None,
) -> LayoutResult:
    """Inter-procedural basic-block reordering driven by TRG reduction."""
    return optimize(
        module, bundle, Granularity.BASIC_BLOCK, Model.TRG, config,
        memo=memo, stats=stats,
    )


#: Optimizer registry, keyed by the names used throughout the evaluation.
OPTIMIZERS: dict[str, Callable[..., LayoutResult]] = {
    "function-affinity": function_affinity,
    "bb-affinity": bb_affinity,
    "function-trg": function_trg,
    "bb-trg": bb_trg,
}

#: (granularity, model) behind each of the four optimizers — the basis of
#: :func:`analysis_cell`'s precomputation contract.
_OPTIMIZER_SPECS: dict[str, tuple[Granularity, str]] = {
    "function-affinity": (Granularity.FUNCTION, Model.AFFINITY),
    "bb-affinity": (Granularity.BASIC_BLOCK, Model.AFFINITY),
    "function-trg": (Granularity.FUNCTION, Model.TRG),
    "bb-trg": (Granularity.BASIC_BLOCK, Model.TRG),
}


def _comparator(granularity: Granularity, model: str) -> Callable[..., LayoutResult]:
    def run(
        module: Module,
        bundle: TraceBundle,
        config: OptimizerConfig = OptimizerConfig(),
        *,
        memo=None,
        stats: Optional[dict] = None,
    ) -> LayoutResult:
        return optimize(
            module, bundle, granularity, model, config, memo=memo, stats=stats
        )

    return run


#: Comparison baselines (not part of the paper's four optimizers): the
#: classic Pettis-Hansen ordering and a naive hot-first frequency sort,
#: at both granularities.  Used by the extension experiments to locate the
#: paper's models against prior and trivial art.
COMPARATORS: dict[str, Callable[..., LayoutResult]] = {
    "function-ph": _comparator(Granularity.FUNCTION, Model.PH),
    "bb-ph": _comparator(Granularity.BASIC_BLOCK, Model.PH),
    "function-popularity": _comparator(Granularity.FUNCTION, Model.POPULARITY),
    "bb-popularity": _comparator(Granularity.BASIC_BLOCK, Model.POPULARITY),
}


def _register_extras() -> None:
    from .coloring import color_functions
    from .splitting import hot_cold_split

    COMPARATORS["hotcold-split"] = hot_cold_split
    COMPARATORS["function-coloring"] = color_functions


_register_extras()
