"""Pettis-Hansen code ordering, as a comparison baseline.

Pettis & Hansen's profile-guided positioning (PLDI'90) is the classic code
layout algorithm — the ancestor of today's hfsort/C3 and BOLT orderings —
and the natural baseline the paper's models should be measured against
(its lineage is cited through the hot-path-profiling related work).  We
implement the *ordering* half at both granularities:

1. build a weighted undirected graph whose edge (x, y) counts how often x
   and y execute **adjacently** in the trimmed trace (for functions this
   is call/return adjacency; for blocks, control transfers);
2. start with every node as a singleton chain; process edges by
   decreasing weight; when the two endpoints lie at the *ends* of
   different chains, concatenate the chains (reversing as needed so the
   endpoints touch); otherwise drop the edge;
3. emit chains by decreasing total edge weight, ties by first occurrence.

Compared to the paper's models: PH sees only *adjacent* pairs — it has no
notion of a window (affinity) or an interference range (TRG) — so it packs
hot paths beautifully but cannot group blocks that co-occur at a small
distance without ever being adjacent (the Fig. 3 halves).  The comparison
experiment quantifies exactly that gap.
"""

from __future__ import annotations

import numpy as np

from ..trace.trim import trim

__all__ = ["transition_graph", "pettis_hansen_order"]


def transition_graph(trace: np.ndarray) -> dict[tuple[int, int], int]:
    """Adjacent-transition counts over the trimmed trace.

    Returns undirected edge weights keyed by ``(min, max)`` symbol pairs.
    """
    t = trim(np.asarray(trace))
    weights: dict[tuple[int, int], int] = {}
    data = t.tolist()
    for a, b in zip(data, data[1:]):
        if a == b:  # cannot happen on a trimmed trace; guard anyway
            continue
        key = (a, b) if a < b else (b, a)
        weights[key] = weights.get(key, 0) + 1
    return weights


class _Chain:
    __slots__ = ("nodes", "weight")

    def __init__(self, node: int):
        self.nodes: list[int] = [node]
        self.weight = 0


def pettis_hansen_order(trace: np.ndarray) -> list[int]:
    """The Pettis-Hansen layout order for the symbols of ``trace``."""
    t = trim(np.asarray(trace))
    if t.shape[0] == 0:
        return []
    weights = transition_graph(t)

    first_occ: dict[int, int] = {}
    for i, x in enumerate(t.tolist()):
        first_occ.setdefault(x, i)

    chains: dict[int, _Chain] = {}
    chain_of: dict[int, _Chain] = {}
    for sym in first_occ:
        chain = _Chain(sym)
        chains[id(chain)] = chain
        chain_of[sym] = chain

    # heaviest first; deterministic tie-break on the node pair.
    edges = sorted(weights.items(), key=lambda kv: (-kv[1], kv[0]))
    for (a, b), w in edges:
        ca, cb = chain_of[a], chain_of[b]
        if ca is cb:
            continue
        # endpoints must be chain ends.
        if a not in (ca.nodes[0], ca.nodes[-1]):
            continue
        if b not in (cb.nodes[0], cb.nodes[-1]):
            continue
        # orient so ...a | b... (a at ca's tail, b at cb's head).
        if ca.nodes[-1] != a:
            ca.nodes.reverse()
        if cb.nodes[0] != b:
            cb.nodes.reverse()
        ca.nodes.extend(cb.nodes)
        ca.weight += cb.weight + w
        for sym in cb.nodes:
            chain_of[sym] = ca
        del chains[id(cb)]

    ordered = sorted(
        chains.values(),
        key=lambda c: (-c.weight, min(first_occ[s] for s in c.nodes)),
    )
    out: list[int] = []
    for chain in ordered:
        out.extend(chain.nodes)
    return out
