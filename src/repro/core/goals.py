"""Defensiveness and politeness scoring from measurements (paper Secs. I,
II-A).

The formal, model-based classification lives in
:mod:`repro.locality.missmodel`; this module is its *measurement* twin: it
takes miss ratios observed by simulation or hardware counters and reports
the same three benefit components, in the relative form the paper tabulates
("miss ratio reduction").

Terminology (paper Sec. I):

* **defensiveness** — the program becomes more robust against peer
  interference: its *own* co-run misses drop;
* **politeness** (a.k.a. niceness) — the program interferes less: the
  *peer's* co-run misses drop.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["GoalScores", "relative_reduction", "score_goals"]


def relative_reduction(before: float, after: float) -> float:
    """``(before - after) / before``; 0 when ``before`` is 0.

    This is the paper's "miss ratio reduction": 0.25 means a quarter of the
    misses disappeared; negative values are regressions.
    """
    if before == 0:
        return 0.0
    return (before - after) / before


@dataclass(frozen=True)
class GoalScores:
    """Measured three-way benefit classification of one optimization.

    All fields are relative miss-ratio reductions (positive = better).
    """

    #: solo-run self miss reduction (conventional locality benefit).
    locality: float
    #: co-run self miss reduction (defensiveness).
    defensiveness: float
    #: co-run peer miss reduction (politeness).
    politeness: float

    @property
    def defensive_beyond_locality(self) -> float:
        """Extra co-run benefit not explained by the solo improvement.

        Positive values are the paper's headline phenomenon: "an
        optimization does not improve solo-run performance but improves
        co-run performance".
        """
        return self.defensiveness - self.locality


def score_goals(
    solo_self_before: float,
    solo_self_after: float,
    corun_self_before: float,
    corun_self_after: float,
    corun_peer_before: float,
    corun_peer_after: float,
) -> GoalScores:
    """Build :class:`GoalScores` from six measured miss ratios.

    ``before``/``after`` refer to the program's layout; the peer is
    unchanged in both measurements.
    """
    return GoalScores(
        locality=relative_reduction(solo_self_before, solo_self_after),
        defensiveness=relative_reduction(corun_self_before, corun_self_after),
        politeness=relative_reduction(corun_peer_before, corun_peer_after),
    )
