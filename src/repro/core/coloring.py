"""Cache-line coloring function placement (Hashemi, Kaeli & Calder).

The paper's trace-pruning section credits Hashemi et al. [9], whose PLDI'97
work places *procedures* at chosen cache-line colors so that functions
that are live together do not collide in the cache — accepting **gaps**
between functions as the price.  The paper's own transformations refuse
gaps ("we do not insert spaces between functions"), which makes coloring
the perfect foil: it attacks conflicts directly but inflates the
instruction footprint, so it should lose ground exactly where the paper's
defensiveness story says footprint matters (shared cache).

Simplified algorithm (faithful to the idea, not the full unavailable-set
machinery):

1. estimate pairwise liveness with the TRG of the function trace (two
   functions conflict if reuses of one interleave the other);
2. place functions in decreasing execution-frequency order;
3. for each function, try every cache-set color for its start line and
   pick the color minimizing the conflict-weighted set overlap with
   already-placed functions; the function starts at the next address with
   that color, leaving a gap of up to one cache worth of lines;
4. never-executed functions are appended densely (no gaps for cold code).

Returns a :class:`~repro.ir.transforms.LayoutResult` whose address map may
contain gaps (:func:`repro.ir.codegen.place_blocks`).
"""

from __future__ import annotations

import numpy as np

from ..cache.config import CacheConfig
from ..engine.instrument import TraceBundle
from ..ir.codegen import place_blocks
from ..ir.module import INSTRUCTION_BYTES, Module
from ..ir.transforms import LayoutKind, LayoutResult
from ..trace.trim import trim
from .trg import build_trg

__all__ = ["color_functions"]


def color_functions(
    module: Module,
    bundle: TraceBundle,
    config=None,
    *,
    cache: CacheConfig | None = None,
) -> LayoutResult:
    """Cache-line coloring placement at function granularity.

    ``config`` may be an :class:`~repro.core.optimizers.OptimizerConfig`
    (its cache geometry is used); ``cache`` overrides it.
    """
    if cache is None:
        cache = getattr(config, "cache", None) or CacheConfig()
    line = cache.line_bytes
    n_sets = cache.n_sets

    # conflict weights between functions, from the trimmed function trace.
    ftrace = trim(bundle.func_trace)
    trg = build_trg(ftrace, window_blocks=2 * cache.n_lines)

    counts = np.bincount(bundle.func_trace, minlength=len(module.functions))
    hot_order = sorted(
        (i for i in range(len(module.functions)) if counts[i] > 0),
        key=lambda i: (-int(counts[i]), i),
    )
    cold = [i for i in range(len(module.functions)) if counts[i] == 0]

    #: per function index: (start_set, n_sets_spanned) once placed.
    placed: dict[int, tuple[int, int]] = {}
    sizes_lines = [
        -(-module.functions[i].size_bytes // line) for i in range(len(module.functions))
    ]

    def overlap(color: int, span: int, other: tuple[int, int]) -> int:
        """Number of cache sets both footprints cover (modular intervals)."""
        o_color, o_span = other
        hits = 0
        occupied = [False] * n_sets
        for k in range(min(o_span, n_sets)):
            occupied[(o_color + k) % n_sets] = True
        for k in range(min(span, n_sets)):
            if occupied[(color + k) % n_sets]:
                hits += 1
        return hits

    addr = 0
    starts_fn: dict[int, int] = {}
    for fi in hot_order:
        span = sizes_lines[fi]
        neighbours = [
            (placed[gj], trg.weight(fi, gj)) for gj in placed if trg.weight(fi, gj) > 0
        ]
        if neighbours:
            best_color, best_cost = 0, None
            current_color = (addr // line) % n_sets
            for delta in range(n_sets):
                color = (current_color + delta) % n_sets
                cost = sum(w * overlap(color, span, spot) for spot, w in neighbours)
                # prefer smaller gaps on ties (delta ascending).
                if best_cost is None or cost < best_cost:
                    best_color, best_cost = color, cost
        else:
            best_color = (addr // line) % n_sets
        # advance to the next address whose line has the chosen color.
        line_idx = -(-addr // line)  # ceil to a line boundary
        delta = (best_color - (line_idx % n_sets)) % n_sets
        addr = (line_idx + delta) * line
        starts_fn[fi] = addr
        placed[fi] = (best_color, span)
        addr += module.functions[fi].size_bytes + _jump_budget(module, fi)

    for fi in cold:
        starts_fn[fi] = addr
        addr += module.functions[fi].size_bytes + _jump_budget(module, fi)

    # expand to per-block starts: blocks dense inside each function, with
    # the fall-through jump budget accounted block by block.
    starts_by_gid: dict[int, int] = {}
    for fi, func in enumerate(module.functions):
        cursor = starts_fn[fi]
        for block in func.blocks:
            starts_by_gid[block.gid] = cursor
            cursor += block.n_instr * INSTRUCTION_BYTES
            ft = block.terminator.fallthrough_target()
            if ft is not None and _next_block(func, block) != ft:
                cursor += INSTRUCTION_BYTES

    amap = place_blocks(module, starts_by_gid)
    return LayoutResult(
        kind=LayoutKind.FUNCTION,
        address_map=amap,
        order=[module.functions[i].name for i in hot_order + cold],
        note=f"coloring({cache.describe()})",
    )


def _next_block(func, block) -> str | None:
    blocks = func.blocks
    for i, b in enumerate(blocks):
        if b is block:
            return blocks[i + 1].name if i + 1 < len(blocks) else None
    return None  # pragma: no cover


def _jump_budget(module: Module, fi: int) -> int:
    """Bytes of explicit jumps the function's internal layout needs."""
    func = module.functions[fi]
    budget = 0
    for block in func.blocks:
        ft = block.terminator.fallthrough_target()
        if ft is not None and _next_block(func, block) != ft:
            budget += INSTRUCTION_BYTES
    return budget
