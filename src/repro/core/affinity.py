"""w-window reference affinity analysis (paper Sec. II-B).

Definitions (paper Defs. 1-5), over a *trimmed* code-block trace:

* the **footprint** ``fp<a, b>`` of two occurrences is the number of
  distinct blocks in the window spanning them, endpoints inclusive;
* blocks X and Y have **w-window affinity** iff *every* occurrence of X has
  some occurrence of Y with ``fp <= w``, and vice versa;
* for a given w, blocks partition greedily into **affinity groups** in
  which every pair is w-affine (Algorithm 1); sweeping w yields the
  **affinity hierarchy** (:mod:`repro.core.hierarchy`).

Two implementations:

* :func:`affine_pairs_naive` — Algorithm 1's direct reading: per occurrence
  pair, compute the window footprint by scanning.  O(B² · occ · n); the test
  oracle.
* :class:`AffinityAnalysis` — the efficient one-pass stack simulation
  (paper's "efficient solution", Sec. II-B).  One LRU-stack pass handles
  **all** window sizes up to ``w_max`` simultaneously:

  - when block Z is accessed, the stack depth d of any block Y equals the
    footprint of the window from Y's latest occurrence to Z's — that covers
    Z's new occurrence *backward* with fp = d;
  - *forward* coverage is credited when the partner arrives: Z's arrival
    covers every still-pending occurrence O (of another block, at time t)
    that Z had not visited since t; the footprint of ``[t, now]`` is the
    number of stack entries more recent than t, read off during the same
    walk (stack order = recency order).  Only Z's **first** occurrence
    after t can be the minimal forward window, and ``t > last(Z)``
    identifies exactly those occurrences, so each (occurrence, partner)
    pair is credited at most once;
  - an occurrence is *finalized* once more than ``w_max`` distinct blocks
    have been accessed since it — no future partner can reach it within
    ``w_max`` — and its per-partner minimal footprints are folded into
    per-pair coverage histograms.

  The result answers "are X, Y w-affine?" for every ``w <= w_max`` from the
  histograms in O(1).

A ``coverage`` threshold below 1.0 relaxes "every occurrence" to "at least
this fraction of occurrences", which trades the strict definition for
robustness to profiling noise (ablated in the experiments).
"""

from __future__ import annotations

from collections import deque

import numpy as np

from ..trace.trim import trim

__all__ = ["AffinityAnalysis", "affine_pairs_naive", "window_footprint"]


def window_footprint(trace: np.ndarray, i: int, j: int) -> int:
    """``fp<trace[i], trace[j]>`` — distinct symbols in the closed window.

    Counted with a set rather than ``np.unique``: the naive oracle calls
    this per occurrence pair, and an O(n log n) sort per window made the
    oracle quadratic-with-a-sort on exactly the traces it exists to
    cross-check.  A hash-set distinct count is O(window).
    """
    lo, hi = (i, j) if i <= j else (j, i)
    return len(set(trace[lo : hi + 1].tolist()))


def affine_pairs_naive(trace: np.ndarray, w: int) -> set[tuple[int, int]]:
    """All unordered w-affine pairs, by direct application of Definition 3.

    Exponential in nothing but heavy (O(B² · occ · window)); for tests and
    tiny traces only.
    """
    t = trim(np.asarray(trace))
    n = int(t.shape[0])
    occ: dict[int, list[int]] = {}
    for i in range(n):
        occ.setdefault(int(t[i]), []).append(i)
    symbols = sorted(occ)
    pairs: set[tuple[int, int]] = set()
    for a_idx, x in enumerate(symbols):
        for y in symbols[a_idx + 1 :]:
            if _covered_naive(t, occ[x], occ[y], w) and _covered_naive(
                t, occ[y], occ[x], w
            ):
                pairs.add((x, y))
    return pairs


def _covered_naive(trace: np.ndarray, xs: list[int], ys: list[int], w: int) -> bool:
    """True if every occurrence in ``xs`` has a ``ys`` occurrence within fp <= w.

    Only the nearest ``y`` on each side can give the minimal footprint
    (windows nest, and footprint is monotone under window inclusion).
    """
    ys_arr = np.asarray(ys)
    for i in xs:
        k = int(np.searchsorted(ys_arr, i))
        candidates = []
        if k < len(ys):
            candidates.append(int(ys_arr[k]))
        if k > 0:
            candidates.append(int(ys_arr[k - 1]))
        if not any(window_footprint(trace, i, j) <= w for j in candidates):
            return False
    return True


class _Pending:
    """One not-yet-finalized occurrence."""

    __slots__ = ("time", "symbol", "record")

    def __init__(self, time: int, symbol: int):
        self.time = time
        self.symbol = symbol
        #: partner -> minimal footprint seen so far (2 .. w_max)
        self.record: dict[int, int] = {}


class AffinityAnalysis:
    """One-pass w-window affinity over a code-block trace.

    Parameters
    ----------
    trace:
        dynamic block trace (trimmed internally).
    w_max:
        largest window footprint analysed (paper uses 2..20).
    coverage:
        fraction of occurrences that must be covered for affinity
        (1.0 = the strict Definition 3).
    time_horizon:
        optional cap, in trace steps, on how long an occurrence may stay
        pending.  ``None`` is exact; a finite horizon bounds memory on
        loop-dominated traces at the cost of missing coverage through very
        long low-footprint windows (an approximation in the spirit of the
        paper's trace pruning).
    """

    def __init__(
        self,
        trace: np.ndarray,
        w_max: int = 20,
        coverage: float = 1.0,
        time_horizon: int | None = None,
    ):
        if w_max < 1:
            raise ValueError("w_max must be >= 1")
        if not 0.0 < coverage <= 1.0:
            raise ValueError("coverage must be in (0, 1]")
        self.w_max = w_max
        self.coverage = coverage
        self.trace = trim(np.asarray(trace))
        self._n_occ: dict[int, int] = {}
        self._cov: dict[tuple[int, int], np.ndarray] = {}
        self._first_occ: dict[int, int] = {}
        self._analyze(time_horizon)

    @classmethod
    def from_precomputed(
        cls,
        trace: np.ndarray,
        *,
        w_max: int,
        coverage: float = 1.0,
        n_occ: dict[int, int],
        first_occ: dict[int, int],
        cov: dict[tuple[int, int], np.ndarray],
    ) -> "AffinityAnalysis":
        """Wrap an externally computed analysis (the vectorized kernel in
        :mod:`repro.core.fastanalysis`, or a memoized artifact) so every
        query and hierarchy consumer runs the same code path.

        The inputs must be exactly what ``_analyze`` would have produced
        for ``trace`` — the kernel parity suite pins that contract.
        """
        if w_max < 1:
            raise ValueError("w_max must be >= 1")
        if not 0.0 < coverage <= 1.0:
            raise ValueError("coverage must be in (0, 1]")
        self = object.__new__(cls)
        self.w_max = w_max
        self.coverage = coverage
        self.trace = trim(np.asarray(trace))
        self._n_occ = {int(k): int(v) for k, v in n_occ.items()}
        self._first_occ = {int(k): int(v) for k, v in first_occ.items()}
        self._cov = {
            (int(x), int(y)): np.asarray(h, dtype=np.int64)
            for (x, y), h in cov.items()
        }
        return self

    # -- analysis ----------------------------------------------------------

    def _analyze(self, time_horizon: int | None) -> None:
        w_max = self.w_max
        trace = self.trace.tolist()
        n_occ = self._n_occ
        first_occ = self._first_occ

        # Recency list of (symbol, last_access); most recent first.  A dict
        # preserves insertion order, so re-inserting on access keeps it
        # sorted by recency with O(1) updates.
        last_access: dict[int, int] = {}
        pending: deque[_Pending] = deque()  # oldest first

        for now, z in enumerate(trace):
            n_occ[z] = n_occ.get(z, 0) + 1
            if z not in first_occ:
                first_occ[z] = now
            prev_z = last_access.get(z, -1)

            new_occ = _Pending(now, z)

            # One walk over the recency order serves both directions.  The
            # entry at walk position d (1-based, z counted as position 1)
            # has the d-th most recent last-access; every pending occurrence
            # with time in (access[d+1], access[d]] sees exactly d distinct
            # blocks up to now.
            #
            # Walk entries most-recent-first, skipping z (conceptually
            # already moved to front).
            depth = 1  # z itself
            credit_cutoff = prev_z  # only occurrences newer than this
            # Last-access times of the other blocks, most recent first.  One
            # extra entry beyond w_max disambiguates "exactly w_max" from
            # "beyond w_max" during forward crediting.
            boundary_times: list[int] = []
            for sym in reversed(last_access):
                if sym == z:
                    continue
                depth += 1
                if depth > w_max + 1:
                    break
                boundary_times.append(last_access[sym])
                if depth <= w_max:
                    # Backward coverage for z's new occurrence.
                    new_occ.record[sym] = depth

            # Forward crediting: pending occurrences newer than prev_z, i.e.
            # those for which this is z's first arrival since.  Iterate from
            # the newest pending backward; the footprint of [t, now] is
            # 1 + (number of boundary times >= t), merged in one pass since
            # both sequences descend in time.
            if pending:
                bi = 0
                n_bounds = len(boundary_times)
                for occ_obj in reversed(pending):
                    t = occ_obj.time
                    if t <= credit_cutoff:
                        break
                    while bi < n_bounds and boundary_times[bi] >= t:
                        bi += 1
                    d = 1 + bi
                    if d > w_max:
                        break
                    if occ_obj.symbol == z:
                        continue
                    rec = occ_obj.record
                    old = rec.get(z)
                    if old is None or d < old:
                        rec[z] = d

            last_access.pop(z, None)
            last_access[z] = now
            pending.append(new_occ)

            # Finalize occurrences that fell out of the footprint horizon:
            # more than w_max distinct blocks accessed since them.
            if len(last_access) > w_max:
                # Time of the (w_max+1)-th most recent distinct block.
                cutoff = _kth_most_recent(last_access, w_max + 1)
                while pending and pending[0].time <= cutoff:
                    self._finalize(pending.popleft())
            if time_horizon is not None:
                while pending and pending[0].time < now - time_horizon:
                    self._finalize(pending.popleft())

        while pending:
            self._finalize(pending.popleft())

    def _finalize(self, occ: _Pending) -> None:
        w_max = self.w_max
        cov = self._cov
        y = occ.symbol
        for partner, d in occ.record.items():
            key = (y, partner)
            hist = cov.get(key)
            if hist is None:
                hist = np.zeros(w_max + 1, dtype=np.int64)
                cov[key] = hist
            hist[d] += 1

    # -- queries -----------------------------------------------------------

    @property
    def symbols(self) -> list[int]:
        """Distinct blocks of the trimmed trace, by first occurrence."""
        return sorted(self._n_occ, key=self._first_occ.__getitem__)

    def occurrences(self, x: int) -> int:
        return self._n_occ.get(x, 0)

    def first_occurrence(self, x: int) -> int:
        return self._first_occ[x]

    def covered(self, x: int, y: int, w: int) -> int:
        """Occurrences of ``x`` whose minimal window footprint to ``y`` <= w."""
        hist = self._cov.get((x, y))
        if hist is None:
            return 0
        w = min(w, self.w_max)
        return int(hist[: w + 1].sum())

    def is_affine(self, x: int, y: int, w: int) -> bool:
        """w-window affinity per Definition 3 (with the coverage threshold)."""
        if w > self.w_max:
            raise ValueError(f"w={w} exceeds analysed w_max={self.w_max}")
        if x == y:
            return True
        need_x = self.coverage * self._n_occ.get(x, 0)
        need_y = self.coverage * self._n_occ.get(y, 0)
        if need_x == 0 or need_y == 0:
            return False
        return self.covered(x, y, w) >= need_x and self.covered(y, x, w) >= need_y

    def affine_pairs(self, w: int) -> set[tuple[int, int]]:
        """All unordered affine pairs at window size ``w``."""
        pairs: set[tuple[int, int]] = set()
        for (x, y) in self._cov:
            if x < y and self.is_affine(x, y, w):
                pairs.add((x, y))
        return pairs


def _kth_most_recent(last_access: dict[int, int], k: int) -> int:
    """Last-access time of the k-th most recent distinct symbol."""
    it = reversed(last_access.values())
    t = -1
    for _ in range(k):
        t = next(it)
    return t
