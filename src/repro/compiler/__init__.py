"""Compilation driver: the paper's instrument -> model -> transform ->
evaluate pipeline, with on-disk build artifacts and a CLI
(``python -m repro.compiler``)."""

from .artifacts import load_layout, load_report, save_layout, save_report
from .driver import BuildResult, Driver

__all__ = [
    "BuildResult",
    "Driver",
    "load_layout",
    "load_report",
    "save_layout",
    "save_report",
]
