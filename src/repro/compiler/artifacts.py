"""On-disk artifacts of a compilation run.

The paper's system is file-based: the instrumented run writes a trace file
and a mapping file; the optimizer writes reordered binaries.  This module
gives the reproduction the same shape — a *build directory* holding:

``trace.npz``
    the instrumented profile (see :func:`repro.engine.instrument.save_bundle`);
``layout-<name>.json``
    one serialized layout per optimizer: the gid order, per-gid addresses
    and sizes, added-jump count, and provenance;
``report.json``
    the driver's summary (miss ratios per layout, timings).

Layout serialization is loss-free with respect to evaluation: a loaded
layout reproduces the exact fetch stream of the original (asserted in the
tests), so builds can be evaluated later or on another machine.

Persistence is crash-safe: every ``save_*`` goes through
:func:`repro.robust.atomic.atomic_write`, so a killed build leaves the old
artifact or none — never a truncated file.  Every ``load_*`` validates
before constructing, so a truncated, bit-flipped, or schema-broken file
surfaces as :class:`~repro.robust.errors.ArtifactError` naming the path
and the defect, not as a ``JSONDecodeError`` three layers down.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from ..ir.codegen import AddressMap
from ..ir.transforms import LayoutKind, LayoutResult
from ..robust.atomic import atomic_write_text
from ..robust.errors import ArtifactError

__all__ = ["save_layout", "load_layout", "save_report", "load_report"]

#: top-level keys a serialized layout must carry.
_LAYOUT_KEYS = (
    "kind",
    "note",
    "order",
    "starts",
    "sizes",
    "added_jumps",
    "base",
    "input_order",
)


def save_layout(layout: LayoutResult, path: str | Path) -> None:
    """Serialize a :class:`LayoutResult` as JSON (atomically)."""
    amap = layout.address_map
    payload = {
        "kind": layout.kind.value,
        "note": layout.note,
        "order": [int(x) for x in amap.order],
        "starts": [int(x) for x in amap.starts.tolist()],
        "sizes": [int(x) for x in amap.sizes.tolist()],
        "added_jumps": int(amap.added_jumps),
        "base": int(amap.base),
        "input_order": [
            int(x) if isinstance(x, (int, np.integer)) else x for x in layout.order
        ],
    }
    atomic_write_text(path, json.dumps(payload, indent=1))


def _read_json(path: Path, kind: str):
    """Read + parse a JSON artifact; all failure modes become ArtifactError."""
    try:
        text = path.read_text()
    except FileNotFoundError as err:
        raise ArtifactError(
            f"{kind} file does not exist", path=path, defect="missing file", cause=err
        ) from err
    except OSError as err:
        raise ArtifactError(
            f"{kind} file is unreadable", path=path, defect="unreadable", cause=err
        ) from err
    try:
        return json.loads(text)
    except json.JSONDecodeError as err:
        raise ArtifactError(
            f"{kind} file is not valid JSON (truncated or corrupt)",
            path=path,
            defect=f"invalid JSON at offset {err.pos}",
            cause=err,
        ) from err


def load_layout(path: str | Path) -> LayoutResult:
    """Load and validate a layout written by :func:`save_layout`.

    Raises :class:`~repro.robust.errors.ArtifactError` on any defect:
    missing file, truncated/garbled JSON, missing keys, an unknown layout
    kind, non-parallel ``order``/``starts``/``sizes`` arrays, duplicate
    gids, or negative addresses.
    """
    path = Path(path)
    payload = _read_json(path, "layout")
    if not isinstance(payload, dict):
        raise ArtifactError(
            "layout file must hold a JSON object",
            path=path,
            defect=f"top-level {type(payload).__name__}",
        )
    missing = [k for k in _LAYOUT_KEYS if k not in payload]
    if missing:
        raise ArtifactError(
            f"layout file is missing key(s): {', '.join(missing)}",
            path=path,
            defect=f"missing keys {missing}",
        )
    try:
        kind = LayoutKind(payload["kind"])
    except ValueError as err:
        raise ArtifactError(
            f"layout file has unknown kind {payload['kind']!r}",
            path=path,
            defect="unknown layout kind",
            cause=err,
        ) from err
    try:
        order = [int(x) for x in payload["order"]]
        starts = np.array(payload["starts"], dtype=np.int64)
        sizes = np.array(payload["sizes"], dtype=np.int64)
        added_jumps = int(payload["added_jumps"])
        base = int(payload["base"])
    except (TypeError, ValueError) as err:
        raise ArtifactError(
            "layout file has non-numeric layout arrays",
            path=path,
            defect="non-numeric array entry",
            cause=err,
        ) from err
    n = len(order)
    if starts.ndim != 1 or sizes.ndim != 1 or starts.shape[0] != n or sizes.shape[0] != n:
        raise ArtifactError(
            f"layout arrays are not parallel: {n} order entries, "
            f"{starts.shape[0]} starts, {sizes.shape[0]} sizes",
            path=path,
            defect="array length mismatch",
        )
    if sorted(order) != list(range(n)):
        raise ArtifactError(
            "layout order is not a permutation of block gids",
            path=path,
            defect="duplicate or out-of-range gid in order",
        )
    if n and int(starts.min()) < 0:
        raise ArtifactError(
            f"layout has a negative block start address ({int(starts.min())})",
            path=path,
            defect="negative start address",
        )
    if n and int(sizes.min()) <= 0:
        raise ArtifactError(
            f"layout has a non-positive block size ({int(sizes.min())})",
            path=path,
            defect="non-positive block size",
        )
    amap = AddressMap(
        order=order,
        starts=starts,
        sizes=sizes,
        added_jumps=added_jumps,
        base=base,
    )
    return LayoutResult(
        kind=kind,
        address_map=amap,
        order=list(payload["input_order"]),
        note=payload["note"],
    )


def save_report(report: dict, path: str | Path) -> None:
    """Write the driver's summary report (atomically)."""
    atomic_write_text(path, json.dumps(report, indent=1, sort_keys=True))


def load_report(path: str | Path) -> dict:
    """Load and validate a report written by :func:`save_report`."""
    path = Path(path)
    payload = _read_json(path, "report")
    if not isinstance(payload, dict):
        raise ArtifactError(
            "report file must hold a JSON object",
            path=path,
            defect=f"top-level {type(payload).__name__}",
        )
    return payload
