"""On-disk artifacts of a compilation run.

The paper's system is file-based: the instrumented run writes a trace file
and a mapping file; the optimizer writes reordered binaries.  This module
gives the reproduction the same shape — a *build directory* holding:

``trace.npz``
    the instrumented profile (see :func:`repro.engine.instrument.save_bundle`);
``layout-<name>.json``
    one serialized layout per optimizer: the gid order, per-gid addresses
    and sizes, added-jump count, and provenance;
``report.json``
    the driver's summary (miss ratios per layout, timings).

Layout serialization is loss-free with respect to evaluation: a loaded
layout reproduces the exact fetch stream of the original (asserted in the
tests), so builds can be evaluated later or on another machine.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from ..ir.codegen import AddressMap
from ..ir.transforms import LayoutKind, LayoutResult

__all__ = ["save_layout", "load_layout", "save_report", "load_report"]


def save_layout(layout: LayoutResult, path: str | Path) -> None:
    """Serialize a :class:`LayoutResult` as JSON."""
    amap = layout.address_map
    payload = {
        "kind": layout.kind.value,
        "note": layout.note,
        "order": [int(x) for x in amap.order],
        "starts": [int(x) for x in amap.starts.tolist()],
        "sizes": [int(x) for x in amap.sizes.tolist()],
        "added_jumps": int(amap.added_jumps),
        "base": int(amap.base),
        "input_order": [
            int(x) if isinstance(x, (int, np.integer)) else x for x in layout.order
        ],
    }
    Path(path).write_text(json.dumps(payload, indent=1))


def load_layout(path: str | Path) -> LayoutResult:
    """Load a layout written by :func:`save_layout`."""
    payload = json.loads(Path(path).read_text())
    amap = AddressMap(
        order=list(payload["order"]),
        starts=np.array(payload["starts"], dtype=np.int64),
        sizes=np.array(payload["sizes"], dtype=np.int64),
        added_jumps=int(payload["added_jumps"]),
        base=int(payload["base"]),
    )
    return LayoutResult(
        kind=LayoutKind(payload["kind"]),
        address_map=amap,
        order=list(payload["input_order"]),
        note=payload["note"],
    )


def save_report(report: dict, path: str | Path) -> None:
    """Write the driver's summary report."""
    Path(path).write_text(json.dumps(report, indent=1, sort_keys=True))


def load_report(path: str | Path) -> dict:
    return json.loads(Path(path).read_text())
