"""``python -m repro.compiler`` — compile a suite program.

Examples::

    python -m repro.compiler syn-sjeng
    python -m repro.compiler omnetpp --optimizers bb-affinity function-trg \
        --build-dir build/omnetpp --scale 0.5
"""

from __future__ import annotations

import argparse
import sys

from ..core.optimizers import COMPARATORS, OPTIMIZERS
from ..workloads.suite import build as build_suite_program
from .driver import Driver


def main(argv: list[str] | None = None) -> int:
    known = list(OPTIMIZERS) + list(COMPARATORS)
    parser = argparse.ArgumentParser(
        prog="repro.compiler",
        description="Instrument, optimize and evaluate one suite program.",
    )
    parser.add_argument("program", help="suite program name (e.g. syn-sjeng)")
    parser.add_argument(
        "--optimizers",
        nargs="+",
        default=list(OPTIMIZERS),
        choices=known,
        metavar="NAME",
        help=f"layout optimizers to run (default: the paper's four; known: {', '.join(known)})",
    )
    parser.add_argument(
        "--build-dir", default=None, help="directory to write artifacts into"
    )
    parser.add_argument(
        "--scale", type=float, default=1.0, help="trace-budget multiplier in (0,1]"
    )
    parser.add_argument(
        "--no-evaluate", action="store_true", help="skip the ref-input evaluation"
    )
    parser.add_argument(
        "--lint",
        action="store_true",
        help="statically analyze every produced layout (see python -m repro.lint)",
    )
    parser.add_argument(
        "--static-lint",
        action="store_true",
        help="run the profile-free S-pack over every produced layout "
        "(see python -m repro.staticlint)",
    )
    parser.add_argument(
        "--profile-source",
        choices=["trace", "static"],
        default="trace",
        help="optimization profile: an instrumented test run ('trace', the "
        "paper's pipeline) or the heuristic CFG walk ('static', no execution)",
    )
    args = parser.parse_args(argv)

    prog, module = build_suite_program(args.program)
    spec = prog.spec
    if args.scale != 1.0:
        prog, module = build_suite_program(
            args.program,
            ref_blocks=max(10_000, int(spec.ref_blocks * args.scale)),
            test_blocks=max(5_000, int(spec.test_blocks * args.scale)),
        )
        spec = prog.spec

    driver = Driver(optimizers=args.optimizers, profile_source=args.profile_source)
    result = driver.build(
        module,
        spec.test_input(),
        None if args.no_evaluate else spec.ref_input(),
        build_dir=args.build_dir,
        lint=args.lint,
        static_lint=args.static_lint,
    )

    print(f"program {result.program}: {module.n_functions} functions, "
          f"{module.n_blocks} blocks")
    for name, layout in result.layouts.items():
        line = f"  {name:20s} bytes={layout.total_bytes:7d} jumps={layout.added_jumps:4d}"
        if name in result.miss_ratios:
            line += f"  miss/instr={result.miss_ratios[name]:.4%}"
        if name in result.lint_reports:
            s = result.lint_reports[name].summary()
            line += f"  lint={s['errors']}E/{s['warnings']}W"
        if name in result.static_lint_reports:
            s = result.static_lint_reports[name].summary()
            line += f"  static={s['errors']}E/{s['warnings']}W"
        print(line)
    if result.miss_ratios:
        print(f"best layout: {result.best_layout()}")
    if result.build_dir:
        print(f"artifacts in {result.build_dir}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
