"""The compilation driver: one call from program to optimized layouts.

Mirrors the paper's system organization (Sec. II-F): "the overall system
has two main modules: locality modeling and program transformation.  For a
source program, the modeling step instruments the program and runs it
using the test data input set.  Then it gives the reordered sequence to
program transformation.  ...  The output is four optimized binaries."

:class:`Driver` runs exactly that pipeline over our substrate:

1. **instrument** — execute the test input, collect the trace bundle;
2. **model + transform** — run the requested optimizers (default: the
   paper's four) to produce layouts;
3. **evaluate** (optional) — execute the ref input and simulate each
   layout in the target cache;
4. **persist** (optional) — write the trace, layouts, and report into a
   build directory (:mod:`repro.compiler.artifacts`).

The CLI (``python -m repro.compiler``) exposes the same flow for suite
programs.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Optional, Sequence

from ..cache.config import PAPER_L1I, CacheConfig
from ..cache.setassoc import simulate
from ..core.optimizers import COMPARATORS, OPTIMIZERS, OptimizerConfig
from ..engine.fetch import fetch_lines
from ..engine.instrument import TraceBundle, collect_trace, save_bundle
from ..engine.state import InputSpec
from ..ir.module import Module
from ..ir.transforms import LayoutResult, baseline_layout
from ..lint.diagnostics import LintReport
from ..lint.rules import LintConfig, run_lint
from ..robust.errors import ArtifactError, ProfileError, error_context
from ..staticlint.profile import synthesize_bundle
from ..staticlint.rulepack import StaticLintConfig, run_static_lint
from .artifacts import save_layout, save_report

__all__ = ["BuildResult", "Driver"]


@dataclass
class BuildResult:
    """Everything a compilation run produced."""

    program: str
    profile: TraceBundle
    layouts: dict[str, LayoutResult]
    #: per-layout evaluation: miss ratio per instruction (None if skipped).
    miss_ratios: dict[str, float] = field(default_factory=dict)
    #: per-layout static analysis (populated by ``build(..., lint=True)``).
    lint_reports: dict[str, LintReport] = field(default_factory=dict)
    #: per-layout profile-free analysis (``build(..., static_lint=True)``).
    static_lint_reports: dict[str, LintReport] = field(default_factory=dict)
    #: per-stage wall-clock seconds.
    timings: dict[str, float] = field(default_factory=dict)
    #: build directory, when persisted.
    build_dir: Optional[Path] = None

    def best_layout(self) -> str:
        """Name of the layout with the lowest evaluated miss ratio."""
        if not self.miss_ratios:
            raise ValueError("build was not evaluated")
        return min(self.miss_ratios, key=self.miss_ratios.__getitem__)

    def report(self) -> dict:
        out = {
            "program": self.program,
            "layouts": {
                name: {
                    "kind": layout.kind.value,
                    "note": layout.note,
                    "added_jumps": layout.added_jumps,
                    "total_bytes": layout.total_bytes,
                    "miss_ratio": self.miss_ratios.get(name),
                }
                for name, layout in self.layouts.items()
            },
            "timings": self.timings,
        }
        if self.lint_reports:
            out["lint"] = {
                name: report.to_dict() for name, report in self.lint_reports.items()
            }
        if self.static_lint_reports:
            out["static_lint"] = {
                name: report.to_dict()
                for name, report in self.static_lint_reports.items()
            }
        return out


class Driver:
    """Configurable instrument/optimize/evaluate pipeline."""

    def __init__(
        self,
        optimizer_config: Optional[OptimizerConfig] = None,
        cache: CacheConfig = PAPER_L1I,
        optimizers: Optional[Sequence[str]] = None,
        *,
        jobs: int = 1,
        memo=None,
        store=None,
        profile_source: str = "trace",
    ):
        """``jobs`` fans the per-layout evaluation simulations out across
        worker processes; ``memo`` (a :class:`repro.perf.memo.SimMemo`)
        replays identical simulations from the content-addressed cache;
        ``store`` (a :class:`repro.perf.store.TraceStore`) ships the
        evaluation streams to workers as zero-copy memmap refs instead of
        pickled arrays.  All of them only trade wall-clock time — never
        results.

        ``profile_source`` selects where the optimization profile comes
        from: ``"trace"`` (the paper's pipeline — instrument and run the
        test input) or ``"static"`` (no execution at all — the synthetic
        bundle of :func:`repro.staticlint.profile.synthesize_bundle`,
        walked from CFG branch heuristics).  The evaluation stage always
        measures against the real ref-input trace, so the two sources
        are directly comparable."""
        if jobs < 1:
            raise ValueError("jobs must be >= 1")
        if profile_source not in ("trace", "static"):
            raise ValueError(
                f"profile_source must be 'trace' or 'static', got {profile_source!r}"
            )
        self.optimizer_config = optimizer_config or OptimizerConfig(cache=cache)
        self.cache = cache
        self.jobs = jobs
        self.memo = memo
        self.store = store
        self._cell_pool = None
        self.profile_source = profile_source
        self.optimizer_names = list(optimizers or OPTIMIZERS)
        for name in self.optimizer_names:
            if name not in OPTIMIZERS and name not in COMPARATORS:
                raise ValueError(f"unknown optimizer {name!r}")

    def _optimizer(self, name: str):
        return OPTIMIZERS.get(name) or COMPARATORS[name]

    def cell_pool(self):
        """The driver's persistent cell pool (lazy, reused across builds)."""
        from ..perf.parallel import CellPool

        if self._cell_pool is None:
            self._cell_pool = CellPool(self.jobs, store=self.store)
        return self._cell_pool

    def close(self) -> None:
        """Release the persistent cell pool (idempotent)."""
        if self._cell_pool is not None:
            self._cell_pool.shutdown()
            self._cell_pool = None

    def __enter__(self) -> "Driver":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def _evaluate(self, streams: list):
        """Simulate the layouts' fetch streams (memoized, possibly parallel).

        The per-layout cells are independent, so with ``jobs > 1`` they
        fan out across the driver's persistent cell pool; memo hits are
        resolved first and fresh results are stored back, all yielding
        stats bit-identical to serial un-memoized simulation.  With a
        trace store attached, streams ship as zero-copy refs keyed by
        the same content digest the memo key consumed.
        """
        if self.memo is None and self.jobs == 1 and self.store is None:
            return [simulate(stream, self.cache) for stream in streams]

        from ..perf.memo import memo_key
        from ..perf.parallel import simulate_cells
        from ..perf.store import trace_digest

        results: list = [None] * len(streams)
        pending: list[tuple[int, str]] = []
        tasks = []
        for i, stream in enumerate(streams):
            keysrc = trace_digest(stream) if self.store is not None else stream
            if self.memo is not None:
                key = memo_key(keysrc, self.cache, prefetch=False)
                cached = self.memo.get(key)
                if cached is not None:
                    results[i] = cached
                    continue
            else:
                key = ""
            pending.append((i, key))
            shipped = (
                self.store.ref(stream, key=keysrc)
                if self.store is not None
                else stream
            )
            tasks.append((shipped, self.cache, False))
        pool = self.cell_pool() if (self.jobs > 1 or self.store is not None) else None
        for (i, key), stats in zip(
            pending, simulate_cells(tasks, jobs=self.jobs, pool=pool)
        ):
            if self.memo is not None:
                self.memo.put(key, stats)
            results[i] = stats
        return results

    def build(
        self,
        module: Module,
        test_input: InputSpec,
        ref_input: Optional[InputSpec] = None,
        build_dir: Optional[str | Path] = None,
        *,
        lint: bool = False,
        lint_config: Optional[LintConfig] = None,
        static_lint: bool = False,
        static_lint_config: Optional[StaticLintConfig] = None,
    ) -> BuildResult:
        """Run the pipeline on ``module``.

        ``ref_input`` enables the evaluation stage; ``build_dir`` persists
        all artifacts.  ``lint=True`` adds a post-layout verification stage:
        every produced layout is statically analyzed against the test-input
        profile and the per-layout :class:`~repro.lint.diagnostics.LintReport`
        is recorded in :attr:`BuildResult.lint_reports` (and in
        :meth:`BuildResult.report`).  ``static_lint=True`` adds the
        profile-free S-pack (:mod:`repro.staticlint`) over the same
        layouts into :attr:`BuildResult.static_lint_reports` — usable
        even when the build itself is trace-driven, so the two packs can
        be diffed report-for-report.

        Every stage failure surfaces as a typed
        :class:`~repro.robust.errors.ReproError`: a module/input that
        breaks instrumentation raises ``ProfileError`` (stage
        ``instrument``), optimizer and evaluation blow-ups raise
        ``SimulationError`` naming the stage and layout, and persistence
        problems raise ``ArtifactError`` — never a raw ``KeyError`` /
        ``IndexError`` from the pipeline internals.
        """
        timings: dict[str, float] = {}
        program = module.name

        start = time.perf_counter()
        with error_context(
            "instrument", program=program, reraise=ProfileError
        ):
            if self.profile_source == "static":
                profile = synthesize_bundle(
                    module, max_blocks=test_input.max_blocks, seed=test_input.seed
                )
            else:
                profile = collect_trace(module, test_input)
        timings["instrument"] = time.perf_counter() - start

        layouts: dict[str, LayoutResult] = {"baseline": baseline_layout(module)}
        for name in self.optimizer_names:
            start = time.perf_counter()
            with error_context("optimize", program=program, layout=name):
                # The four model-driven optimizers accept the analysis
                # memo (kernel artifacts replay across builds); the
                # comparator extras may predate that keyword.
                kwargs = (
                    {"memo": self.memo}
                    if self.memo is not None and name in OPTIMIZERS
                    else {}
                )
                layouts[name] = self._optimizer(name)(
                    module, profile, self.optimizer_config, **kwargs
                )
            timings[f"optimize/{name}"] = time.perf_counter() - start

        result = BuildResult(
            program=program, profile=profile, layouts=layouts, timings=timings
        )

        if lint:
            start = time.perf_counter()
            for name, layout in layouts.items():
                with error_context("lint", program=program, layout=name):
                    result.lint_reports[name] = run_lint(
                        module, layout, profile, self.cache, lint_config,
                        layout_name=name,
                    )
            timings["lint"] = time.perf_counter() - start

        if static_lint:
            from ..staticlint.frequency import estimate_frequencies

            start = time.perf_counter()
            cfg = static_lint_config or StaticLintConfig()
            with error_context("static-lint", program=program):
                # The frequency estimate is layout-independent: compute
                # once, share across every layout's report.
                static_profile = estimate_frequencies(module, cfg.frequency)
            for name, layout in layouts.items():
                with error_context("static-lint", program=program, layout=name):
                    result.static_lint_reports[name] = run_static_lint(
                        module, layout, self.cache, cfg,
                        profile=static_profile, layout_name=name,
                    )
            timings["static-lint"] = time.perf_counter() - start

        if ref_input is not None:
            start = time.perf_counter()
            with error_context(
                "evaluate-instrument", program=program, reraise=ProfileError
            ):
                ref = collect_trace(module, ref_input)
            streams = {}
            for name, layout in layouts.items():
                with error_context("evaluate", program=program, layout=name):
                    streams[name] = fetch_lines(
                        ref.bb_trace, layout.address_map, self.cache.line_bytes
                    )
            with error_context("evaluate", program=program):
                for name, stats in zip(
                    streams, self._evaluate(list(streams.values()))
                ):
                    result.miss_ratios[name] = stats.misses / ref.instr_count
            timings["evaluate"] = time.perf_counter() - start

        if build_dir is not None:
            out = Path(build_dir)
            with error_context(
                "persist", program=program, path=out, reraise=ArtifactError
            ):
                out.mkdir(parents=True, exist_ok=True)
                save_bundle(profile, out / "trace.npz")
                for name, layout in layouts.items():
                    save_layout(layout, out / f"layout-{name}.json")
                save_report(result.report(), out / "report.json")
            result.build_dir = out
        return result
