"""Robustness subsystem: error taxonomy, crash-safe IO, fault injection.

Real layout pipelines are long-running batch jobs over messy profiles;
profile collection and ingestion are the fragile stages.  This package
makes the instrument -> optimize -> simulate -> persist pipeline survive
bad inputs, crashes, and partial failures:

- :mod:`repro.robust.errors` — the :class:`ReproError` taxonomy
  (``ProfileError``, ``SimulationError``, ``ArtifactError``, joined by
  :class:`repro.lint.integrity.LayoutError`) with machine-readable
  context;
- :mod:`repro.robust.atomic` — write-temp-then-rename persistence, so a
  killed build leaves the old artifact or none, never a truncated file;
- :mod:`repro.robust.journal` — the append-only JSONL run journal behind
  ``python -m repro.experiments --resume``;
- :mod:`repro.robust.faults` — deterministic fault injection (truncation,
  bit flips, out-of-range gids, crash points) used by ``tests/robust/``
  to prove every entry point degrades with a typed error.
"""

from .atomic import atomic_write, atomic_write_bytes, atomic_write_text
from .errors import (
    ArtifactError,
    ProfileError,
    ReproError,
    SimulationError,
    error_context,
)
from .journal import JournalEntry, RunJournal

__all__ = [
    "ArtifactError",
    "JournalEntry",
    "ProfileError",
    "ReproError",
    "RunJournal",
    "SimulationError",
    "atomic_write",
    "atomic_write_bytes",
    "atomic_write_text",
    "error_context",
]
