"""Robustness subsystem: error taxonomy, crash-safe IO, self-healing runtime.

Real layout pipelines are long-running batch jobs over messy profiles;
profile collection and ingestion are the fragile stages.  This package
makes the instrument -> optimize -> simulate -> persist pipeline survive
bad inputs, crashes, hangs, and partial failures:

- :mod:`repro.robust.errors` — the :class:`ReproError` taxonomy
  (``ProfileError``, ``SimulationError``, ``ArtifactError``, joined by
  :class:`repro.lint.integrity.LayoutError`) with machine-readable
  context, plus the transient/permanent :func:`fault_class` partition
  that drives retry decisions;
- :mod:`repro.robust.atomic` — write-temp-then-rename persistence, so a
  killed build leaves the old artifact or none, never a truncated file;
- :mod:`repro.robust.journal` — the append-only, checksummed JSONL run
  journal behind ``python -m repro.experiments --resume``, torn-tail
  safe across hard kills;
- :mod:`repro.robust.supervisor` — the self-healing execution runtime:
  :class:`SupervisedPool` (heartbeats, hang deadlines, bounded worker
  respawn), :class:`RetryPolicy` (taxonomy-aware decorrelated-jitter
  backoff), and :class:`CircuitBreaker` (the memo disk tier's
  closed/open/half-open guard);
- :mod:`repro.robust.faults` — deterministic fault injection (truncation,
  bit flips, out-of-range gids, crash points, and the process-level
  :class:`ChaosPlan` harness behind ``--chaos``) used by
  ``tests/robust/`` to prove every entry point degrades with a typed
  error.
"""

from .atomic import atomic_write, atomic_write_bytes, atomic_write_text
from .errors import (
    PERMANENT,
    TRANSIENT,
    ArtifactError,
    ProfileError,
    ReproError,
    SimulationError,
    WorkerCrashError,
    WorkerHangError,
    error_context,
    fault_class,
)
from .faults import ChaosPlan
from .journal import JournalEntry, RunJournal
from .supervisor import (
    CircuitBreaker,
    RetryPolicy,
    SupervisedPool,
    SupervisorStats,
)

__all__ = [
    "ArtifactError",
    "ChaosPlan",
    "CircuitBreaker",
    "JournalEntry",
    "PERMANENT",
    "ProfileError",
    "ReproError",
    "RetryPolicy",
    "RunJournal",
    "SimulationError",
    "SupervisedPool",
    "SupervisorStats",
    "TRANSIENT",
    "WorkerCrashError",
    "WorkerHangError",
    "atomic_write",
    "atomic_write_bytes",
    "atomic_write_text",
    "error_context",
    "fault_class",
]
