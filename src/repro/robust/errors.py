"""Structured error taxonomy for the whole pipeline.

Every failure the reproduction can produce — a malformed external profile,
a corrupted on-disk artifact, a pipeline stage blowing up on bad input —
is reported as a :class:`ReproError` subclass carrying machine-readable
context (pipeline stage, program, layout, offending path, defect, and the
original cause).  Long-running batch jobs over messy profiles need to
triage failures programmatically; a bare ``KeyError`` from three layers
down cannot be triaged, a ``ProfileError(stage="ingest", path=...,
defect="missing column 'bytes'")`` can.

The taxonomy::

    ReproError                      root; .context dict + .to_dict()
    ├── ProfileError (ValueError)   profile collection / ingestion defects
    ├── SimulationError             a pipeline stage failed (optimize,
    │   │                           simulate, measure, experiment)
    │   ├── WorkerCrashError        a worker process died mid-experiment
    │   └── WorkerHangError         a worker process stalled past its
    │                               deadline and was killed
    ├── ArtifactError               an on-disk artifact is missing,
    │                               truncated, or corrupt
    └── LayoutError (ValueError)    structural layout-invariant violation
                                    (defined in :mod:`repro.lint.integrity`,
                                    joins the taxonomy by inheritance)

``ProfileError`` and ``LayoutError`` also subclass :class:`ValueError` so
callers that predate the taxonomy and catch ``ValueError`` keep working.

Fault classes
-------------

The supervised runtime (:mod:`repro.robust.supervisor`) retries only
failures that plausibly go away on a second attempt.  :func:`fault_class`
maps any exception onto that policy axis:

* :data:`TRANSIENT` — a killed/hung worker, an I/O-flavoured
  ``ArtifactError`` (the storage tier hiccuped; the artifact itself may
  be fine), or a generic ``SimulationError`` (stage failures cover the
  seed-sensitive ablations ``--retries`` existed for);
* :data:`PERMANENT` — bad input or a broken invariant: ``ProfileError``,
  ``LayoutError``, content-corrupt ``ArtifactError``.  Retrying these
  re-runs a deterministic failure, so the policy fails fast instead.

This module is a leaf: it imports only the standard library, so every
other subsystem (lint, compiler, engine, workloads, experiments) can
depend on it without cycles.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Any, Iterator, Optional, Type

__all__ = [
    "ArtifactError",
    "PERMANENT",
    "ProfileError",
    "ReproError",
    "SimulationError",
    "TRANSIENT",
    "WorkerCrashError",
    "WorkerHangError",
    "error_context",
    "fault_class",
]

#: context keys rendered (in this order) after the message.
_CONTEXT_KEYS = ("stage", "program", "layout", "path", "defect")


class ReproError(Exception):
    """Root of the pipeline's error taxonomy.

    Parameters beyond ``message`` are free-form context.  The well-known
    keys — ``stage``, ``program``, ``layout``, ``path``, ``defect``,
    ``cause`` — are also exposed as attributes; anything else lands in
    :attr:`context` only.
    """

    def __init__(self, message: str, *, cause: Optional[BaseException] = None, **context: Any):
        self.message = message
        self.cause = cause
        self.context: dict[str, Any] = {
            k: v for k, v in context.items() if v is not None
        }
        super().__init__(self._render())

    def _render(self) -> str:
        parts = [self.message]
        tags = [
            f"{key}={self.context[key]}"
            for key in _CONTEXT_KEYS
            if key in self.context
        ]
        if tags:
            parts.append(f"[{', '.join(tags)}]")
        if self.cause is not None:
            parts.append(f"(caused by {type(self.cause).__name__}: {self.cause})")
        return " ".join(parts)

    # -- accessors -----------------------------------------------------------

    @property
    def stage(self) -> Optional[str]:
        return self.context.get("stage")

    @property
    def program(self) -> Optional[str]:
        return self.context.get("program")

    @property
    def layout(self) -> Optional[str]:
        return self.context.get("layout")

    @property
    def path(self) -> Optional[str]:
        p = self.context.get("path")
        return None if p is None else str(p)

    @property
    def defect(self) -> Optional[str]:
        return self.context.get("defect")

    def ensure_context(self, **context: Any) -> "ReproError":
        """Fill in context keys that are not already set (outer pipeline
        layers annotate errors raised deeper down without clobbering the
        more precise inner context)."""
        for key, value in context.items():
            if value is not None and key not in self.context:
                self.context[key] = value
        self.args = (self._render(),)
        return self

    def to_dict(self) -> dict[str, Any]:
        """Machine-readable form, e.g. for the experiment run journal."""
        out: dict[str, Any] = {
            "type": type(self).__name__,
            "message": self.message,
        }
        out.update(
            (k, str(v) if k == "path" else v) for k, v in self.context.items()
        )
        if self.cause is not None:
            out["cause"] = f"{type(self.cause).__name__}: {self.cause}"
        return out


class ProfileError(ReproError, ValueError):
    """Profile collection or ingestion failed: a malformed external CSV,
    a trace referencing unknown blocks, a non-integer trace dtype, a
    module/profile mismatch.  Subclasses :class:`ValueError` because the
    pre-taxonomy validation in :mod:`repro.workloads.external` raised bare
    ``ValueError`` and callers may still catch that."""


class SimulationError(ReproError):
    """A pipeline stage (optimize, simulate, measure, experiment driver)
    failed.  ``stage`` names the stage; ``cause`` carries the original
    exception when the failure was wrapped rather than raised directly."""


class ArtifactError(ReproError):
    """An on-disk artifact (``layout-*.json``, ``report.json``,
    ``trace.npz``, a run journal) is missing, truncated, or corrupt.
    ``path`` names the file and ``defect`` describes what is wrong."""


class WorkerCrashError(SimulationError):
    """A worker process died (SIGKILL, OOM, segfault) mid-experiment.
    The process, not the experiment, failed — the canonical transient
    fault: the supervisor replaces the worker and re-dispatches."""


class WorkerHangError(SimulationError):
    """A worker process stalled past its deadline (or stopped
    heartbeating) and was killed by the supervisor.  Transient for the
    same reason as :class:`WorkerCrashError`."""


#: fault classes consumed by :class:`repro.robust.supervisor.RetryPolicy`.
TRANSIENT = "transient"
PERMANENT = "permanent"

#: exception type names that mark an ``ArtifactError`` as I/O-flavoured
#: when only the rendered cause survives (e.g. across a process boundary).
_IO_CAUSE_NAMES = frozenset(
    {
        "OSError",
        "IOError",
        "BlockingIOError",
        "InterruptedError",
        "PermissionError",
        "TimeoutError",
        "ConnectionError",
        "ConnectionResetError",
        "BrokenPipeError",
    }
)


def fault_class(err: BaseException) -> str:
    """Classify an exception as :data:`TRANSIENT` or :data:`PERMANENT`.

    The decision procedure, in order:

    1. worker death/hang is transient by construction;
    2. anything that is also ``ValueError`` or ``KeyError`` — the
       taxonomy's bad-input markers (``ProfileError``, ``LayoutError``,
       unknown-id errors) — is permanent: the same input fails the same
       way every time;
    3. an ``ArtifactError`` is transient iff its *cause* is an I/O error
       (flaky disk/NFS); content corruption is permanent;
    4. other ``SimulationError``\\ s are transient (stage failures cover
       the seed-sensitive ablations);
    5. raw ``OSError`` is transient; everything else is permanent.
    """
    if isinstance(err, (WorkerCrashError, WorkerHangError)):
        return TRANSIENT
    if isinstance(err, (ValueError, KeyError)):
        return PERMANENT
    if isinstance(err, ArtifactError):
        if isinstance(err.cause, OSError):
            return TRANSIENT
        rendered = err.context.get("cause")
        if isinstance(rendered, str):
            name = rendered.split(":", 1)[0].strip()
            if name in _IO_CAUSE_NAMES:
                return TRANSIENT
        return PERMANENT
    if isinstance(err, SimulationError):
        return TRANSIENT
    if isinstance(err, OSError):
        return TRANSIENT
    return PERMANENT


@contextmanager
def error_context(
    stage: str,
    *,
    program: Optional[str] = None,
    layout: Optional[str] = None,
    path: Optional[Any] = None,
    reraise: Type[ReproError] = SimulationError,
) -> Iterator[None]:
    """Annotate or wrap anything raised inside the block.

    A :class:`ReproError` escaping the block gains any missing context
    keys and is re-raised unchanged; any other ``Exception`` is wrapped in
    ``reraise`` with the original as ``cause``.  ``BaseException`` —
    ``KeyboardInterrupt``, injected crashes — passes through untouched.
    """
    try:
        yield
    except ReproError as err:
        err.ensure_context(stage=stage, program=program, layout=layout, path=path)
        raise
    except Exception as err:
        raise reraise(
            f"{stage} failed",
            stage=stage,
            program=program,
            layout=layout,
            path=path,
            cause=err,
        ) from err
