"""Crash-safe artifact persistence: write-temp-then-rename.

A build killed mid-``write_text`` leaves a truncated ``layout-*.json``
that a later ``load_layout`` chokes on.  The fix is the classic atomic
protocol: write the full payload to a temporary file *in the same
directory* (same filesystem, so the rename is atomic), flush and fsync
it, then ``os.replace`` it over the destination.  At every instant the
destination holds either the complete old artifact or the complete new
one — never a prefix of either.

The writer checks two named crash points
(:data:`~repro.robust.faults.ATOMIC_MID_WRITE` before the payload is
flushed, :data:`~repro.robust.faults.ATOMIC_PRE_RENAME` after the temp
file is complete but before the rename) so the fault-injection suite can
kill it at the worst moments and assert the guarantee holds.
"""

from __future__ import annotations

import os
import tempfile
from contextlib import contextmanager
from pathlib import Path
from typing import IO, Iterator

from .faults import ATOMIC_MID_WRITE, ATOMIC_PRE_RENAME, maybe_crash

__all__ = ["atomic_write", "atomic_write_bytes", "atomic_write_text"]


@contextmanager
def atomic_write(path: str | Path, *, binary: bool = False) -> Iterator[IO]:
    """Open a temp file next to ``path``; rename it over ``path`` on
    success, delete it on any failure (including injected crashes)."""
    dest = Path(path)
    fd, tmp_name = tempfile.mkstemp(
        dir=dest.parent, prefix=dest.name + ".", suffix=".tmp"
    )
    tmp = Path(tmp_name)
    # mkstemp creates 0600; restore the umask-default mode a plain
    # write_text would have produced, so artifact permissions are
    # unchanged by the atomic protocol.
    umask = os.umask(0)
    os.umask(umask)
    os.chmod(fd, 0o666 & ~umask)
    try:
        with os.fdopen(fd, "wb" if binary else "w") as fh:
            maybe_crash(ATOMIC_MID_WRITE, str(dest))
            yield fh
            fh.flush()
            os.fsync(fh.fileno())
        maybe_crash(ATOMIC_PRE_RENAME, str(dest))
        os.replace(tmp, dest)
    except BaseException:
        tmp.unlink(missing_ok=True)
        raise


def atomic_write_text(path: str | Path, text: str) -> None:
    with atomic_write(path) as fh:
        fh.write(text)


def atomic_write_bytes(path: str | Path, data: bytes) -> None:
    with atomic_write(path, binary=True) as fh:
        fh.write(data)
