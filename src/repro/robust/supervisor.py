"""Self-healing execution runtime: supervised workers, typed retries, breaker.

The batch runner's next life is a long-lived layout service, and a
long-lived engine must survive the three failure modes a plain process
pool cannot: a worker that *dies* (OOM, SIGKILL), a worker that *hangs*
(deadlock, runaway input), and a storage tier that *degrades* (flaky
disk under the memo cache).  This module supplies the three matching
mechanisms:

* :class:`SupervisedPool` — a worker pool built on raw
  ``multiprocessing`` processes (an executor cannot kill an individual
  worker) with per-worker heartbeats, a per-task deadline, automatic
  worker replacement under a bounded respawn budget, and bounded
  re-dispatch of tasks interrupted by infrastructure faults.  When the
  budget is exhausted the pool resolves the remaining work as *failed*
  instead of deadlocking — a graceful partial-result exit.

* :class:`RetryPolicy` — a declarative retry schedule (exponential
  backoff with decorrelated jitter, deterministic per ``(seed, key)``)
  that consults :func:`repro.robust.errors.fault_class` so only
  :data:`~repro.robust.errors.TRANSIENT` failures are retried;
  :data:`~repro.robust.errors.PERMANENT` ones (bad input, broken
  invariants) fail fast instead of burning attempts on a deterministic
  failure.

* :class:`CircuitBreaker` — the classic closed / open / half-open state
  machine.  :class:`repro.perf.memo.SimMemo` wraps its disk tier in one:
  repeated I/O failures trip it, lookups degrade to the in-process memo
  (correctness preserved — a memo miss is always just a recomputation),
  and a timer half-opens it for a probe.

Determinism note: supervision never changes *results*.  A killed or hung
worker's task is re-dispatched to a fresh worker and recomputed from the
same content-addressed inputs, so the journal outcomes of a chaos run
match the clean run — the soak gate in CI asserts exactly that.

This module keeps its imports to the standard library plus
:mod:`repro.robust.errors`; everything heavier (the Lab, the memo, the
experiment registry) is imported lazily inside worker/functions so the
robustness layer stays a leaf the rest of the tree can depend on.
"""

from __future__ import annotations

import hashlib
import os
import random
import signal
import threading
import time
from collections import deque
from concurrent.futures import Future
from dataclasses import dataclass
from typing import Any, Callable, Optional

from .errors import (
    TRANSIENT,
    ReproError,
    WorkerCrashError,
    WorkerHangError,
    fault_class,
)

__all__ = [
    "CircuitBreaker",
    "RetryPolicy",
    "SupervisedPool",
    "SupervisorStats",
]

#: seconds between heartbeat increments inside a worker.
_BEAT_INTERVAL_S = 0.05

#: supervisor sweep interval (result collection, deadlines, dispatch).
_POLL_S = 0.02


# -- retry policy -------------------------------------------------------------

@dataclass(frozen=True)
class RetryPolicy:
    """Declarative, taxonomy-aware retry schedule.

    ``max_retries`` grants that many *extra* attempts, but only for
    failures :func:`~repro.robust.errors.fault_class` calls transient —
    a ``ProfileError`` fails on attempt one no matter the budget.
    Backoff is exponential with decorrelated jitter (the AWS variant):
    ``d_{i} = min(cap_s, uniform(base_s, 3 * d_{i-1}))`` with
    ``d_0 = base_s``, which spreads concurrent retriers apart instead of
    letting them stampede in lockstep.  The sequence is deterministic
    per ``(seed, key)`` — seeded via SHA-256, not the salted builtin
    ``hash()`` — so two runs of the same suite sleep identically.
    """

    max_retries: int = 0
    base_s: float = 0.05
    cap_s: float = 30.0
    seed: int = 0

    def classify(self, err: BaseException) -> str:
        """The fault class this policy assigns to ``err``."""
        return fault_class(err)

    def should_retry(self, err: BaseException, attempt: int) -> bool:
        """True iff attempt number ``attempt`` (1-based) may be followed
        by another one for failure ``err``."""
        return attempt <= self.max_retries and fault_class(err) == TRANSIENT

    def schedule(self, key: str, attempts: Optional[int] = None) -> list[float]:
        """The first ``attempts`` backoff delays (seconds) for ``key``.

        Every delay lies in ``[base_s, cap_s]`` and within the
        decorrelated envelope ``d_i <= min(cap_s, 3 * d_{i-1})``.
        """
        if attempts is None:
            attempts = self.max_retries
        digest = hashlib.sha256(f"{self.seed}|{key}".encode()).digest()
        rng = random.Random(int.from_bytes(digest[:8], "big"))
        delays: list[float] = []
        prev = self.base_s
        for _ in range(max(0, attempts)):
            prev = min(self.cap_s, rng.uniform(self.base_s, max(self.base_s, 3 * prev)))
            delays.append(prev)
        return delays

    def delay_s(self, key: str, attempt: int) -> float:
        """Backoff delay after failed attempt number ``attempt`` (1-based)."""
        sched = self.schedule(key, attempt)
        return sched[-1] if sched else 0.0

    def sleep_before_retry(
        self, key: str, attempt: int, *, sleep: Callable[[float], None] = time.sleep
    ) -> float:
        """Sleep the scheduled backoff; returns the delay slept."""
        delay = self.delay_s(key, attempt)
        if delay > 0:
            sleep(delay)
        return delay


# -- circuit breaker ----------------------------------------------------------

class CircuitBreaker:
    """Closed / open / half-open breaker for a flaky dependency tier.

    * **closed** — operations flow; ``failure_threshold`` *consecutive*
      failures trip it open.
    * **open** — :meth:`allow` answers False (callers degrade) until
      ``reset_after_s`` seconds pass on the injected ``clock``.
    * **half-open** — one probe is allowed through: success closes the
      breaker (counted in :attr:`recoveries`), failure re-opens it
      immediately.

    ``trips`` counts every transition into *open*, including half-open
    probes that fail.  Thread-safe; the clock is injectable so tests can
    step time instead of sleeping.
    """

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half-open"

    def __init__(
        self,
        *,
        failure_threshold: int = 3,
        reset_after_s: float = 30.0,
        clock: Callable[[], float] = time.monotonic,
    ):
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        if reset_after_s < 0:
            raise ValueError("reset_after_s must be >= 0")
        self.failure_threshold = failure_threshold
        self.reset_after_s = reset_after_s
        self._clock = clock
        self._lock = threading.Lock()
        self._state = self.CLOSED
        self._opened_at = 0.0
        self._consecutive = 0
        self.trips = 0
        self.recoveries = 0

    def _state_locked(self) -> str:
        if (
            self._state == self.OPEN
            and self._clock() - self._opened_at >= self.reset_after_s
        ):
            self._state = self.HALF_OPEN
        return self._state

    @property
    def state(self) -> str:
        with self._lock:
            return self._state_locked()

    def allow(self) -> bool:
        """May an operation go through right now?"""
        with self._lock:
            return self._state_locked() != self.OPEN

    def record_success(self) -> None:
        with self._lock:
            if self._state_locked() == self.HALF_OPEN:
                self.recoveries += 1
            self._state = self.CLOSED
            self._consecutive = 0

    def record_failure(self) -> None:
        with self._lock:
            state = self._state_locked()
            self._consecutive += 1
            if state == self.HALF_OPEN or self._consecutive >= self.failure_threshold:
                self.trips += 1
                self._state = self.OPEN
                self._opened_at = self._clock()
                self._consecutive = 0

    def counters(self) -> dict[str, Any]:
        return {"state": self.state, "trips": self.trips, "recoveries": self.recoveries}


# -- the supervised pool ------------------------------------------------------

@dataclass
class SupervisorStats:
    """Lifetime counters of one :class:`SupervisedPool`."""

    workers_spawned: int = 0
    workers_replaced: int = 0
    worker_crashes: int = 0
    worker_hangs: int = 0
    redispatches: int = 0
    #: True once the respawn budget ran out and remaining work was
    #: resolved as failed (the graceful partial-result exit).
    partial: bool = False

    def to_dict(self) -> dict[str, Any]:
        return {
            "workers_spawned": self.workers_spawned,
            "workers_replaced": self.workers_replaced,
            "worker_crashes": self.worker_crashes,
            "worker_hangs": self.worker_hangs,
            "redispatches": self.redispatches,
            "partial": self.partial,
        }


class _Task:
    __slots__ = ("exp_id", "retries", "inject_fault", "policy", "future", "dispatches")

    def __init__(
        self,
        exp_id: str,
        retries: int,
        inject_fault: Optional[str],
        policy: Optional[RetryPolicy],
    ):
        self.exp_id = exp_id
        self.retries = retries
        self.inject_fault = inject_fault
        self.policy = policy
        self.future: Future = Future()
        #: times this task has been handed to a worker (chaos directives
        #: attach only to the first dispatch, so re-runs are clean).
        self.dispatches = 0


class _WorkerSlot:
    __slots__ = ("process", "conn", "heartbeat", "last_beat", "last_beat_t", "task", "dispatched_t")

    def __init__(self, process, conn, heartbeat):
        self.process = process
        self.conn = conn
        self.heartbeat = heartbeat
        self.last_beat = -1
        self.last_beat_t = time.monotonic()
        self.task: Optional[_Task] = None
        self.dispatched_t = 0.0


def _worker_main(
    conn, heartbeat, lab_config, memo_dir, breaker_config, store_dir, chaos
) -> None:
    """Worker process body: beat, build a Lab, serve tasks off the pipe."""
    stop = threading.Event()

    def _beat() -> None:
        while not stop.is_set():
            with heartbeat.get_lock():
                heartbeat.value += 1
            time.sleep(_BEAT_INTERVAL_S)

    threading.Thread(target=_beat, daemon=True).start()

    if chaos is not None:
        from .faults import arm_chaos_worker

        arm_chaos_worker(chaos)

    from ..perf.parallel import _experiment_task, _init_experiment_worker

    _init_experiment_worker(
        lab_config, memo_dir, breaker_config=breaker_config, store_dir=store_dir
    )
    while True:
        try:
            msg = conn.recv()
        except (EOFError, OSError):
            break
        if msg is None:
            break
        exp_id, retries, inject_fault, policy, directive = msg
        if directive is not None:
            if directive[0] == "kill":
                os.kill(os.getpid(), signal.SIGKILL)
            elif directive[0] == "hang":
                time.sleep(float(directive[1]))
        payload = _experiment_task(exp_id, retries, inject_fault, policy=policy)
        try:
            conn.send(payload)
        except (BrokenPipeError, OSError):
            break
    stop.set()


def _failure_payload(exp_id: str, err: ReproError, *, attempts: int = 1) -> dict:
    """A parent-side payload shaped exactly like a worker's, for tasks
    the supervisor had to fail itself (crash/hang budget exhausted)."""
    return {
        "exp_id": exp_id,
        "status": "failed",
        "elapsed_s": 0.0,
        "attempts": attempts,
        "result": None,
        "error": {
            "type": type(err).__name__,
            "dict": err.to_dict(),
            "rendered": str(err),
        },
        "notes": [],
        "timings": {},
        "counters": {},
        "memo": None,
        "store": None,
    }


class SupervisedPool:
    """A supervised pool of experiment workers (drop-in upgrade of
    :class:`repro.perf.parallel.ExperimentPool`).

    Each worker owns a private Lab and a duplex pipe; a background
    supervisor thread collects results, watches heartbeats and per-task
    deadlines, kills hung workers, replaces dead ones within
    ``respawn_budget``, and re-dispatches interrupted tasks up to
    ``max_redispatch`` times.  Futures resolve to the same picklable
    payload dict :func:`repro.perf.parallel._experiment_task` produces,
    so the runner's consume-in-submission-order parity contract is
    unchanged.

    ``chaos`` (a :class:`repro.robust.faults.ChaosPlan`) arms the
    deterministic chaos harness: kill/hang directives attach to the
    *first* dispatch of the named experiments, and workers arm their
    memo I/O fault budget at startup.
    """

    def __init__(
        self,
        jobs: int,
        lab_config: dict,
        *,
        memo_dir: Optional[str] = None,
        hang_timeout_s: float = 300.0,
        respawn_budget: int = 4,
        max_redispatch: int = 2,
        breaker_config: Optional[dict] = None,
        store_dir: Optional[str] = None,
        chaos=None,
    ):
        if jobs < 1:
            raise ValueError("jobs must be >= 1")
        if hang_timeout_s <= 0:
            raise ValueError("hang_timeout_s must be > 0")
        if respawn_budget < 0:
            raise ValueError("respawn_budget must be >= 0")
        from ..perf.parallel import _mp_context

        self._ctx = _mp_context()
        self._lab_config = dict(lab_config)
        self._memo_dir = memo_dir
        self._breaker_config = breaker_config
        self._store_dir = store_dir
        self._chaos = chaos
        self.hang_timeout_s = hang_timeout_s
        self.respawn_budget = respawn_budget
        self.max_redispatch = max_redispatch
        self.stats = SupervisorStats()
        self._lock = threading.Lock()
        self._pending: deque[_Task] = deque()
        self._workers: list[_WorkerSlot] = []
        self._shutdown = False
        self._wake = threading.Event()
        for _ in range(jobs):
            self._workers.append(self._spawn())
        self._thread = threading.Thread(
            target=self._supervise, name="repro-supervisor", daemon=True
        )
        self._thread.start()

    # -- public API --------------------------------------------------------

    def submit(
        self,
        exp_id: str,
        *,
        retries: int = 0,
        inject_fault: Optional[str] = None,
        policy: Optional[RetryPolicy] = None,
    ) -> Future:
        task = _Task(exp_id, retries, inject_fault, policy)
        with self._lock:
            if self._shutdown:
                raise RuntimeError("pool is shut down")
            self._pending.append(task)
        self._wake.set()
        return task.future

    def shutdown(self, *, cancel: bool = False) -> None:
        with self._lock:
            if self._shutdown:
                return
            self._shutdown = True
            pending = list(self._pending)
            self._pending.clear()
            workers = list(self._workers)
            self._workers.clear()
        self._wake.set()
        self._thread.join(timeout=5.0)
        for task in pending:
            task.future.cancel()
        for slot in workers:
            if slot.task is not None:
                slot.task.future.cancel()
            try:
                slot.conn.send(None)
            except (BrokenPipeError, OSError):
                pass
            slot.process.join(timeout=0.2 if cancel else 2.0)
            if slot.process.is_alive():
                slot.process.kill()
                slot.process.join(timeout=1.0)
            slot.conn.close()

    def __enter__(self) -> "SupervisedPool":
        return self

    def __exit__(self, *exc) -> None:
        # Same contract as ExperimentPool: leftover queued work is
        # always abandoned on exit (consumed suites make this a no-op).
        self.shutdown(cancel=True)

    # -- worker lifecycle --------------------------------------------------

    def _spawn(self) -> _WorkerSlot:
        parent_conn, child_conn = self._ctx.Pipe(duplex=True)
        heartbeat = self._ctx.Value("Q", 0)
        process = self._ctx.Process(
            target=_worker_main,
            args=(
                child_conn,
                heartbeat,
                self._lab_config,
                self._memo_dir,
                self._breaker_config,
                self._store_dir,
                self._chaos,
            ),
            daemon=True,
        )
        process.start()
        child_conn.close()
        self.stats.workers_spawned += 1
        return _WorkerSlot(process, parent_conn, heartbeat)

    def _retire(self, slot: _WorkerSlot) -> None:
        if slot in self._workers:
            self._workers.remove(slot)
        if slot.process.is_alive():
            slot.process.kill()
        slot.process.join(timeout=1.0)
        try:
            slot.conn.close()
        except OSError:
            pass

    # -- the supervisor loop -----------------------------------------------

    def _supervise(self) -> None:
        while True:
            self._wake.wait(timeout=_POLL_S)
            self._wake.clear()
            with self._lock:
                if self._shutdown:
                    return
                self._step()

    def _step(self) -> None:
        now = time.monotonic()
        for slot in list(self._workers):
            # 1) finished results.
            if slot.task is not None and slot.conn.poll():
                try:
                    payload = slot.conn.recv()
                except (EOFError, OSError):
                    payload = None  # died mid-send; liveness check below.
                if payload is not None:
                    task, slot.task = slot.task, None
                    if not task.future.cancelled():
                        task.future.set_result(payload)
            # 2) liveness.
            if not slot.process.is_alive():
                self._handle_fault(slot, kind="crash", now=now)
                continue
            # 3) heartbeat stall (process alive but not being scheduled).
            beat = int(slot.heartbeat.value)
            if beat != slot.last_beat:
                slot.last_beat = beat
                slot.last_beat_t = now
            elif now - slot.last_beat_t > self.hang_timeout_s:
                self._handle_fault(slot, kind="stall", now=now)
                continue
            # 4) per-task deadline.
            if slot.task is not None and now - slot.dispatched_t > self.hang_timeout_s:
                self._handle_fault(slot, kind="hang", now=now)
        # 5) dispatch pending work onto idle workers.
        for slot in self._workers:
            if not self._pending:
                break
            if slot.task is None:
                self._dispatch(slot, self._pending.popleft())
        # 6) budget exhausted and nobody left to run: fail what remains.
        if not self._workers and self._pending:
            self._drain_partial()

    def _dispatch(self, slot: _WorkerSlot, task: _Task) -> None:
        directive = None
        if self._chaos is not None and task.dispatches == 0:
            if task.exp_id in self._chaos.kill_exp_ids:
                directive = ("kill",)
            elif task.exp_id in self._chaos.hang_exp_ids:
                directive = ("hang", self.hang_timeout_s * 4)
        task.dispatches += 1
        slot.task = task
        slot.dispatched_t = time.monotonic()
        try:
            slot.conn.send(
                (task.exp_id, task.retries, task.inject_fault, task.policy, directive)
            )
        except (BrokenPipeError, OSError):
            pass  # worker already dead; the next sweep redispatches.

    def _handle_fault(self, slot: _WorkerSlot, *, kind: str, now: float) -> None:
        task = slot.task
        slot.task = None
        self._retire(slot)
        if kind == "crash":
            self.stats.worker_crashes += 1
            err_cls: type = WorkerCrashError
            what = "died"
        else:
            self.stats.worker_hangs += 1
            err_cls = WorkerHangError
            what = "stopped heartbeating" if kind == "stall" else (
                f"exceeded the {self.hang_timeout_s:.0f}s task deadline"
            )
        if task is not None and not task.future.cancelled():
            if task.dispatches <= self.max_redispatch:
                self.stats.redispatches += 1
                self._pending.appendleft(task)
            else:
                err = err_cls(
                    f"worker running {task.exp_id!r} {what} "
                    f"(after {task.dispatches} dispatch(es))",
                    stage="experiment",
                    defect=f"worker {kind}",
                )
                task.future.set_result(
                    _failure_payload(task.exp_id, err, attempts=task.dispatches)
                )
        if self.stats.workers_replaced < self.respawn_budget:
            self.stats.workers_replaced += 1
            self._workers.append(self._spawn())
        elif not self._workers:
            self._drain_partial()

    def _drain_partial(self) -> None:
        """Respawn budget exhausted: resolve all queued work as failed so
        consumers holding futures make progress (partial-result exit)."""
        self.stats.partial = True
        while self._pending:
            task = self._pending.popleft()
            if task.future.cancelled():
                continue
            err = WorkerCrashError(
                f"worker pool exhausted its respawn budget "
                f"({self.respawn_budget}) before running {task.exp_id!r}",
                stage="experiment",
                defect="respawn budget exhausted",
            )
            task.future.set_result(
                _failure_payload(task.exp_id, err, attempts=max(1, task.dispatches))
            )
