"""Deterministic fault injection for the robustness test suite.

Layout pipelines are long-running batch jobs over messy inputs: profiles
arrive truncated, traces reference blocks that were never mapped, a build
is killed mid-write and leaves half a JSON file.  This module *produces*
those defects on demand — deterministically, from an explicit seed — so
the test suite can prove that every entry point degrades with a typed
:class:`~repro.robust.errors.ReproError` instead of a raw ``KeyError`` /
``IndexError`` / ``JSONDecodeError``.

Four families:

* **in-memory faults** — pure functions returning corrupted copies of
  traces, block tables, and layout payloads;
* **on-disk faults** — in-place file corruption (truncation, bit flips,
  JSON field surgery);
* **crash points** — named hooks (:func:`crash_at` / :func:`maybe_crash`)
  that the atomic writer checks, so a test can kill a persist mid-write
  and assert the old artifact survived intact;
* **process-level chaos** — :class:`ChaosPlan` derives a deterministic
  schedule of worker kills, injected hangs, memo I/O faults (slow and
  failing reads/writes via :func:`maybe_io_fault`), and one mid-run memo
  entry corruption from a single seed.  The supervised pool
  (:mod:`repro.robust.supervisor`) executes the plan; the soak gate
  asserts chaos journal outcomes equal the clean run's.

:class:`InjectedCrash` derives from ``BaseException`` on purpose: a real
``kill -9`` is not catchable, so a simulated one must sail past every
``except Exception`` in the pipeline.
"""

from __future__ import annotations

import json
import random
import time
from contextlib import contextmanager
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Iterator, Optional, Sequence

import numpy as np

__all__ = [
    "ChaosPlan",
    "InjectedCrash",
    "MEMO_READ",
    "MEMO_WRITE",
    "arm_chaos_worker",
    "arm_io_faults",
    "arm_io_slow",
    "chaos_corrupt_memo",
    "clear_io_faults",
    "crash_at",
    "maybe_crash",
    "maybe_io_fault",
    "armed_crash_points",
    "out_of_range_gids",
    "negative_gids",
    "float_trace",
    "empty_trace",
    "break_module_terminator",
    "non_contiguous_functions",
    "truncate_file",
    "flip_bits",
    "drop_json_key",
    "misalign_json_array",
]


# -- crash points ------------------------------------------------------------

class InjectedCrash(BaseException):
    """Simulated process death at a named crash point.

    Derives from ``BaseException`` so no ``except Exception`` handler in
    the code under test can swallow it — exactly like a real SIGKILL.
    """

    def __init__(self, point: str, detail: str = ""):
        self.point = point
        self.detail = detail
        super().__init__(f"injected crash at {point!r}" + (f" ({detail})" if detail else ""))


#: currently armed crash-point names (module-level, test-scoped via crash_at).
_ARMED: set[str] = set()

#: crash points the atomic writer exposes, for discoverability.
ATOMIC_PRE_RENAME = "atomic-write:pre-rename"
ATOMIC_MID_WRITE = "atomic-write:mid-write"


def maybe_crash(point: str, detail: str = "") -> None:
    """Raise :class:`InjectedCrash` if ``point`` is armed.  Production code
    calls this at its crash points; it is a no-op unless a test armed the
    point via :func:`crash_at`."""
    if point in _ARMED:
        raise InjectedCrash(point, detail)


@contextmanager
def crash_at(point: str) -> Iterator[None]:
    """Arm a crash point for the duration of the block."""
    _ARMED.add(point)
    try:
        yield
    finally:
        _ARMED.discard(point)


def armed_crash_points() -> frozenset[str]:
    return frozenset(_ARMED)


# -- injected I/O faults ------------------------------------------------------

#: I/O fault points the memo disk tier exposes (see repro.perf.memo).
MEMO_READ = "memo:read"
MEMO_WRITE = "memo:write"

#: point -> remaining injected failures (each consumed raises one OSError).
_IO_FAULTS: dict[str, int] = {}

#: point -> [remaining slow operations, delay seconds].
_IO_SLOW: dict[str, list[float]] = {}


def arm_io_faults(point: str, count: int) -> None:
    """Arm ``count`` injected ``OSError`` failures at ``point``."""
    _IO_FAULTS[point] = int(count)


def arm_io_slow(point: str, count: int, seconds: float) -> None:
    """Arm ``count`` slow operations (``seconds`` of extra latency each)
    at ``point``."""
    _IO_SLOW[point] = [int(count), float(seconds)]


def clear_io_faults() -> None:
    """Disarm every injected I/O fault and delay (test teardown)."""
    _IO_FAULTS.clear()
    _IO_SLOW.clear()


def maybe_io_fault(point: str, detail: str = "") -> None:
    """Consume one armed fault/delay at ``point``, if any.

    Production I/O paths (the memo disk tier) call this before touching
    the filesystem; it is a no-op unless a chaos plan or test armed the
    point.  An armed failure raises a plain ``OSError`` — exactly what a
    flaky disk produces — so the caller's real degradation path runs.
    """
    slow = _IO_SLOW.get(point)
    if slow and slow[0] > 0:
        slow[0] -= 1
        time.sleep(slow[1])
    remaining = _IO_FAULTS.get(point, 0)
    if remaining > 0:
        _IO_FAULTS[point] = remaining - 1
        raise OSError(
            f"injected I/O fault at {point!r}" + (f" ({detail})" if detail else "")
        )


# -- process-level chaos ------------------------------------------------------

@dataclass(frozen=True)
class ChaosPlan:
    """A seeded, deterministic schedule of process-level faults.

    One plan drives one suite run: the supervised pool SIGKILLs the
    worker that first picks up each ``kill_exp_ids`` experiment and
    stalls the first dispatch of each ``hang_exp_ids`` experiment past
    the hang deadline (both attach to the *first* dispatch only, so the
    re-dispatched runs are clean and final outcomes stay deterministic);
    every worker arms ``memo_read_faults`` / ``memo_write_faults``
    injected ``OSError`` s plus ``slow_io_count`` delayed reads on its
    memo disk tier at startup; and the parent corrupts one memo entry on
    disk after consuming the ``corrupt_after``-th experiment payload.

    None of this can change a result: killed/hung tasks recompute from
    the same content-addressed inputs, and a memo fault only ever costs
    a recomputation.  The plan is picklable (it crosses the fork/spawn
    boundary in worker initializers).
    """

    seed: int
    kill_exp_ids: tuple[str, ...]
    hang_exp_ids: tuple[str, ...]
    memo_read_faults: int
    memo_write_faults: int
    slow_io_count: int
    slow_io_s: float
    corrupt_after: int

    @classmethod
    def from_seed(cls, seed: int, exp_ids: Sequence[str]) -> "ChaosPlan":
        """Derive the full schedule for ``exp_ids`` from ``seed`` alone."""
        if not exp_ids:
            raise ValueError("chaos plan needs at least one experiment id")
        rng = random.Random(f"repro.chaos|{seed}")
        ids = list(exp_ids)
        rng.shuffle(ids)
        return cls(
            seed=int(seed),
            kill_exp_ids=(ids[0],),
            hang_exp_ids=(ids[1],) if len(ids) > 1 else (),
            memo_read_faults=rng.randint(3, 5),
            memo_write_faults=rng.randint(1, 3),
            slow_io_count=rng.randint(1, 3),
            slow_io_s=round(rng.uniform(0.001, 0.01), 4),
            corrupt_after=rng.randint(1, max(1, len(ids) - 1)),
        )

    def describe(self) -> str:
        return (
            f"chaos seed {self.seed}: kill {list(self.kill_exp_ids)}, "
            f"hang {list(self.hang_exp_ids)}, "
            f"memo faults {self.memo_read_faults}r/{self.memo_write_faults}w, "
            f"{self.slow_io_count} slow reads ({self.slow_io_s}s), "
            f"corrupt memo entry after payload {self.corrupt_after}"
        )


def arm_chaos_worker(plan: ChaosPlan) -> None:
    """Arm this process's I/O fault budget from ``plan`` (called by the
    supervised pool's worker initializer)."""
    arm_io_faults(MEMO_READ, plan.memo_read_faults)
    arm_io_faults(MEMO_WRITE, plan.memo_write_faults)
    arm_io_slow(MEMO_READ, plan.slow_io_count, plan.slow_io_s)


def chaos_corrupt_memo(cache_dir: str | Path, seed: int) -> Optional[Path]:
    """Corrupt one deterministic memo entry in ``cache_dir`` mid-run.

    Returns the victim path (None if the cache holds no entries yet).
    The entry becomes syntactically invalid JSON, so the next reader
    degrades to recomputation and drops it — silent wrong answers are
    impossible by construction.
    """
    entries = sorted(Path(cache_dir).glob("*.json"))
    if not entries:
        return None
    rng = random.Random(f"repro.chaos.corrupt|{seed}")
    victim = entries[rng.randrange(len(entries))]
    data = victim.read_text()
    victim.write_text(data[: max(1, len(data) // 2)] + "\x00CHAOS")
    return victim


# -- in-memory faults --------------------------------------------------------

def out_of_range_gids(
    trace: np.ndarray, n_blocks: int, *, seed: int = 0, count: int = 4
) -> np.ndarray:
    """Copy of ``trace`` with ``count`` entries rewritten to gids >= n_blocks."""
    rng = np.random.default_rng(seed)
    bad = np.array(trace, copy=True)
    if bad.size == 0:
        return np.full(count, n_blocks + 7, dtype=np.int64)
    idx = rng.choice(bad.size, size=min(count, bad.size), replace=False)
    bad[idx] = n_blocks + rng.integers(1, 100, size=idx.size)
    return bad


def negative_gids(trace: np.ndarray, *, seed: int = 0, count: int = 4) -> np.ndarray:
    """Copy of ``trace`` with ``count`` entries rewritten to negative gids."""
    rng = np.random.default_rng(seed)
    bad = np.array(trace, copy=True)
    if bad.size == 0:
        return np.full(count, -3, dtype=np.int64)
    idx = rng.choice(bad.size, size=min(count, bad.size), replace=False)
    bad[idx] = -rng.integers(1, 50, size=idx.size)
    return bad


def float_trace(trace: np.ndarray) -> np.ndarray:
    """The trace as float64 with a fractional entry — the classic silent
    ``astype(int)`` truncation hazard."""
    bad = np.asarray(trace, dtype=np.float64).copy()
    if bad.size:
        bad[bad.size // 2] += 0.5
    else:
        bad = np.array([0.5])
    return bad


def empty_trace() -> np.ndarray:
    """A zero-length integer trace."""
    return np.empty(0, dtype=np.int64)


class _BrokenTerminator:
    """An object no interpreter dispatch recognizes — stands in for a
    clobbered control-transfer instruction."""

    targets: tuple = ()
    callee = None

    def __repr__(self) -> str:  # pragma: no cover - repr only
        return "<broken terminator>"


def break_module_terminator(module: Any, gid: int = 0) -> None:
    """Corrupt a (sealed) module in place: replace one block's terminator
    with garbage, so the next instrumented run hits an unknown control
    transfer.  Duck-typed on purpose — the harness stays import-light."""
    module.block_by_gid(gid).terminator = _BrokenTerminator()


def non_contiguous_functions(func_of_block: Sequence[int]) -> list[int]:
    """A func-of-block table whose first function's blocks are split by a
    foreign block — violates the contiguity contract of ``from_profile``."""
    table = list(func_of_block)
    if len(table) < 3 or len(set(table)) < 2:
        raise ValueError("need >= 3 blocks over >= 2 functions to interleave")
    other = next(fi for fi in table if fi != table[0])
    table[1] = other
    return table


# -- on-disk faults ----------------------------------------------------------

def truncate_file(path: str | Path, *, keep_fraction: float = 0.5) -> int:
    """Truncate a file in place to ``keep_fraction`` of its bytes (at least
    one byte short of full).  Returns the new size."""
    p = Path(path)
    size = p.stat().st_size
    keep = min(int(size * keep_fraction), size - 1)
    keep = max(keep, 0)
    with p.open("rb+") as fh:
        fh.truncate(keep)
    return keep


def flip_bits(path: str | Path, *, seed: int = 0, count: int = 8) -> list[int]:
    """Flip ``count`` deterministic bits in the file.  Returns the byte
    offsets touched."""
    p = Path(path)
    data = bytearray(p.read_bytes())
    if not data:
        raise ValueError(f"cannot flip bits in empty file {p}")
    rng = np.random.default_rng(seed)
    offsets = sorted(
        int(i) for i in rng.choice(len(data), size=min(count, len(data)), replace=False)
    )
    for off in offsets:
        data[off] ^= 1 << int(rng.integers(0, 8))
    p.write_bytes(bytes(data))
    return offsets


def drop_json_key(path: str | Path, key: str) -> None:
    """Remove a top-level key from a JSON file (schema corruption)."""
    p = Path(path)
    payload = json.loads(p.read_text())
    if key not in payload:
        raise KeyError(f"{p} has no top-level key {key!r}")
    del payload[key]
    p.write_text(json.dumps(payload, indent=1))


def misalign_json_array(path: str | Path, key: str, *, drop: int = 1) -> None:
    """Shorten a top-level JSON array by ``drop`` entries (length-mismatch
    corruption, e.g. ``starts`` no longer parallel to ``order``)."""
    p = Path(path)
    payload = json.loads(p.read_text())
    value = payload.get(key)
    if not isinstance(value, list) or len(value) < drop:
        raise ValueError(f"{p}: key {key!r} is not an array of >= {drop} entries")
    payload[key] = value[: len(value) - drop]
    p.write_text(json.dumps(payload, indent=1))


def corrupt_layout_payload(payload: dict, defect: str) -> dict[str, Any]:
    """Return a corrupted copy of a layout JSON payload.

    Defects: ``drop-kind``, ``bad-kind``, ``duplicate-gid``,
    ``length-mismatch``, ``negative-start``.
    """
    bad = json.loads(json.dumps(payload))  # deep copy via JSON round-trip
    if defect == "drop-kind":
        del bad["kind"]
    elif defect == "bad-kind":
        bad["kind"] = "no-such-layout-kind"
    elif defect == "duplicate-gid":
        # keep the length so the defect is the duplication, not a mismatch.
        bad["order"] = bad["order"][:1] + bad["order"][:-1]
    elif defect == "length-mismatch":
        bad["starts"] = bad["starts"][:-1]
    elif defect == "negative-start":
        bad["starts"] = [-8] + bad["starts"][1:]
    else:
        raise ValueError(f"unknown layout defect {defect!r}")
    return bad


__all__.append("corrupt_layout_payload")
