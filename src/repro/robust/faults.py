"""Deterministic fault injection for the robustness test suite.

Layout pipelines are long-running batch jobs over messy inputs: profiles
arrive truncated, traces reference blocks that were never mapped, a build
is killed mid-write and leaves half a JSON file.  This module *produces*
those defects on demand — deterministically, from an explicit seed — so
the test suite can prove that every entry point degrades with a typed
:class:`~repro.robust.errors.ReproError` instead of a raw ``KeyError`` /
``IndexError`` / ``JSONDecodeError``.

Three families:

* **in-memory faults** — pure functions returning corrupted copies of
  traces, block tables, and layout payloads;
* **on-disk faults** — in-place file corruption (truncation, bit flips,
  JSON field surgery);
* **crash points** — named hooks (:func:`crash_at` / :func:`maybe_crash`)
  that the atomic writer checks, so a test can kill a persist mid-write
  and assert the old artifact survived intact.

:class:`InjectedCrash` derives from ``BaseException`` on purpose: a real
``kill -9`` is not catchable, so a simulated one must sail past every
``except Exception`` in the pipeline.
"""

from __future__ import annotations

import json
from contextlib import contextmanager
from pathlib import Path
from typing import Any, Iterator, Sequence

import numpy as np

__all__ = [
    "InjectedCrash",
    "crash_at",
    "maybe_crash",
    "armed_crash_points",
    "out_of_range_gids",
    "negative_gids",
    "float_trace",
    "empty_trace",
    "break_module_terminator",
    "non_contiguous_functions",
    "truncate_file",
    "flip_bits",
    "drop_json_key",
    "misalign_json_array",
]


# -- crash points ------------------------------------------------------------

class InjectedCrash(BaseException):
    """Simulated process death at a named crash point.

    Derives from ``BaseException`` so no ``except Exception`` handler in
    the code under test can swallow it — exactly like a real SIGKILL.
    """

    def __init__(self, point: str, detail: str = ""):
        self.point = point
        self.detail = detail
        super().__init__(f"injected crash at {point!r}" + (f" ({detail})" if detail else ""))


#: currently armed crash-point names (module-level, test-scoped via crash_at).
_ARMED: set[str] = set()

#: crash points the atomic writer exposes, for discoverability.
ATOMIC_PRE_RENAME = "atomic-write:pre-rename"
ATOMIC_MID_WRITE = "atomic-write:mid-write"


def maybe_crash(point: str, detail: str = "") -> None:
    """Raise :class:`InjectedCrash` if ``point`` is armed.  Production code
    calls this at its crash points; it is a no-op unless a test armed the
    point via :func:`crash_at`."""
    if point in _ARMED:
        raise InjectedCrash(point, detail)


@contextmanager
def crash_at(point: str) -> Iterator[None]:
    """Arm a crash point for the duration of the block."""
    _ARMED.add(point)
    try:
        yield
    finally:
        _ARMED.discard(point)


def armed_crash_points() -> frozenset[str]:
    return frozenset(_ARMED)


# -- in-memory faults --------------------------------------------------------

def out_of_range_gids(
    trace: np.ndarray, n_blocks: int, *, seed: int = 0, count: int = 4
) -> np.ndarray:
    """Copy of ``trace`` with ``count`` entries rewritten to gids >= n_blocks."""
    rng = np.random.default_rng(seed)
    bad = np.array(trace, copy=True)
    if bad.size == 0:
        return np.full(count, n_blocks + 7, dtype=np.int64)
    idx = rng.choice(bad.size, size=min(count, bad.size), replace=False)
    bad[idx] = n_blocks + rng.integers(1, 100, size=idx.size)
    return bad


def negative_gids(trace: np.ndarray, *, seed: int = 0, count: int = 4) -> np.ndarray:
    """Copy of ``trace`` with ``count`` entries rewritten to negative gids."""
    rng = np.random.default_rng(seed)
    bad = np.array(trace, copy=True)
    if bad.size == 0:
        return np.full(count, -3, dtype=np.int64)
    idx = rng.choice(bad.size, size=min(count, bad.size), replace=False)
    bad[idx] = -rng.integers(1, 50, size=idx.size)
    return bad


def float_trace(trace: np.ndarray) -> np.ndarray:
    """The trace as float64 with a fractional entry — the classic silent
    ``astype(int)`` truncation hazard."""
    bad = np.asarray(trace, dtype=np.float64).copy()
    if bad.size:
        bad[bad.size // 2] += 0.5
    else:
        bad = np.array([0.5])
    return bad


def empty_trace() -> np.ndarray:
    """A zero-length integer trace."""
    return np.empty(0, dtype=np.int64)


class _BrokenTerminator:
    """An object no interpreter dispatch recognizes — stands in for a
    clobbered control-transfer instruction."""

    targets: tuple = ()
    callee = None

    def __repr__(self) -> str:  # pragma: no cover - repr only
        return "<broken terminator>"


def break_module_terminator(module: Any, gid: int = 0) -> None:
    """Corrupt a (sealed) module in place: replace one block's terminator
    with garbage, so the next instrumented run hits an unknown control
    transfer.  Duck-typed on purpose — the harness stays import-light."""
    module.block_by_gid(gid).terminator = _BrokenTerminator()


def non_contiguous_functions(func_of_block: Sequence[int]) -> list[int]:
    """A func-of-block table whose first function's blocks are split by a
    foreign block — violates the contiguity contract of ``from_profile``."""
    table = list(func_of_block)
    if len(table) < 3 or len(set(table)) < 2:
        raise ValueError("need >= 3 blocks over >= 2 functions to interleave")
    other = next(fi for fi in table if fi != table[0])
    table[1] = other
    return table


# -- on-disk faults ----------------------------------------------------------

def truncate_file(path: str | Path, *, keep_fraction: float = 0.5) -> int:
    """Truncate a file in place to ``keep_fraction`` of its bytes (at least
    one byte short of full).  Returns the new size."""
    p = Path(path)
    size = p.stat().st_size
    keep = min(int(size * keep_fraction), size - 1)
    keep = max(keep, 0)
    with p.open("rb+") as fh:
        fh.truncate(keep)
    return keep


def flip_bits(path: str | Path, *, seed: int = 0, count: int = 8) -> list[int]:
    """Flip ``count`` deterministic bits in the file.  Returns the byte
    offsets touched."""
    p = Path(path)
    data = bytearray(p.read_bytes())
    if not data:
        raise ValueError(f"cannot flip bits in empty file {p}")
    rng = np.random.default_rng(seed)
    offsets = sorted(
        int(i) for i in rng.choice(len(data), size=min(count, len(data)), replace=False)
    )
    for off in offsets:
        data[off] ^= 1 << int(rng.integers(0, 8))
    p.write_bytes(bytes(data))
    return offsets


def drop_json_key(path: str | Path, key: str) -> None:
    """Remove a top-level key from a JSON file (schema corruption)."""
    p = Path(path)
    payload = json.loads(p.read_text())
    if key not in payload:
        raise KeyError(f"{p} has no top-level key {key!r}")
    del payload[key]
    p.write_text(json.dumps(payload, indent=1))


def misalign_json_array(path: str | Path, key: str, *, drop: int = 1) -> None:
    """Shorten a top-level JSON array by ``drop`` entries (length-mismatch
    corruption, e.g. ``starts`` no longer parallel to ``order``)."""
    p = Path(path)
    payload = json.loads(p.read_text())
    value = payload.get(key)
    if not isinstance(value, list) or len(value) < drop:
        raise ValueError(f"{p}: key {key!r} is not an array of >= {drop} entries")
    payload[key] = value[: len(value) - drop]
    p.write_text(json.dumps(payload, indent=1))


def corrupt_layout_payload(payload: dict, defect: str) -> dict[str, Any]:
    """Return a corrupted copy of a layout JSON payload.

    Defects: ``drop-kind``, ``bad-kind``, ``duplicate-gid``,
    ``length-mismatch``, ``negative-start``.
    """
    bad = json.loads(json.dumps(payload))  # deep copy via JSON round-trip
    if defect == "drop-kind":
        del bad["kind"]
    elif defect == "bad-kind":
        bad["kind"] = "no-such-layout-kind"
    elif defect == "duplicate-gid":
        # keep the length so the defect is the duplication, not a mismatch.
        bad["order"] = bad["order"][:1] + bad["order"][:-1]
    elif defect == "length-mismatch":
        bad["starts"] = bad["starts"][:-1]
    elif defect == "negative-start":
        bad["starts"] = [-8] + bad["starts"][1:]
    else:
        raise ValueError(f"unknown layout defect {defect!r}")
    return bad


__all__.append("corrupt_layout_payload")
