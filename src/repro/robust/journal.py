"""Append-only JSONL journal of an experiment run.

One line per finished experiment attempt::

    {"exp_id": "fig5", "status": "ok", "elapsed_s": 12.3, "attempts": 1,
     "finished_at": 1754460000.0, "error": null}

The journal is the source of truth for ``--resume``: a later run reads it
back and skips every experiment already recorded with ``status == "ok"``.
Records are flushed and fsynced line-by-line, so a crash loses at most
the line being written — and the reader tolerates exactly that, ignoring
a truncated or garbled trailing line instead of dying on it (a journal
describing a crash must itself survive the crash).
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Optional

from .errors import ArtifactError

__all__ = ["JournalEntry", "RunJournal"]

#: statuses a journal entry may carry.
STATUSES = ("ok", "failed", "skipped")


@dataclass(frozen=True)
class JournalEntry:
    """One finished experiment attempt."""

    exp_id: str
    status: str
    elapsed_s: float = 0.0
    attempts: int = 1
    finished_at: float = 0.0
    #: machine-readable error (ReproError.to_dict()) for failed entries.
    error: Optional[dict] = None
    #: per-stage wall seconds for this experiment (telemetry; optional).
    timings: Optional[dict] = None

    def to_json(self) -> str:
        payload = {
            "exp_id": self.exp_id,
            "status": self.status,
            "elapsed_s": round(self.elapsed_s, 3),
            "attempts": self.attempts,
            "finished_at": self.finished_at,
            "error": self.error,
        }
        if self.timings is not None:
            payload["timings"] = {k: round(v, 4) for k, v in self.timings.items()}
        return json.dumps(payload, sort_keys=True)


class RunJournal:
    """Append-only experiment journal at ``path``."""

    def __init__(self, path: str | Path):
        self.path = Path(path)

    def record(
        self,
        exp_id: str,
        status: str,
        *,
        elapsed_s: float = 0.0,
        attempts: int = 1,
        error: Optional[dict] = None,
        timings: Optional[dict] = None,
    ) -> JournalEntry:
        """Append one entry, flushed and fsynced before returning.

        ``elapsed_s`` and ``timings`` are monotonic-clock durations;
        ``finished_at`` is deliberately epoch time (a human-readable
        completion stamp, not used for arithmetic).
        """
        if status not in STATUSES:
            raise ValueError(f"status must be one of {STATUSES}, got {status!r}")
        entry = JournalEntry(
            exp_id=exp_id,
            status=status,
            elapsed_s=elapsed_s,
            attempts=attempts,
            finished_at=time.time(),
            error=error,
            timings=timings,
        )
        self.path.parent.mkdir(parents=True, exist_ok=True)
        with self.path.open("a") as fh:
            fh.write(entry.to_json() + "\n")
            fh.flush()
            os.fsync(fh.fileno())
        return entry

    def entries(self) -> list[JournalEntry]:
        """Read the journal back, tolerating a truncated trailing line.

        A garbled line anywhere *except* the end is a real corruption and
        raises :class:`~repro.robust.errors.ArtifactError`; a bad final
        line is the expected signature of a crash mid-append and is
        dropped silently.
        """
        if not self.path.exists():
            return []
        out: list[JournalEntry] = []
        lines = self.path.read_text().splitlines()
        for lineno, line in enumerate(lines, start=1):
            if not line.strip():
                continue
            try:
                raw = json.loads(line)
                entry = JournalEntry(
                    exp_id=raw["exp_id"],
                    status=raw["status"],
                    elapsed_s=float(raw.get("elapsed_s", 0.0)),
                    attempts=int(raw.get("attempts", 1)),
                    finished_at=float(raw.get("finished_at", 0.0)),
                    error=raw.get("error"),
                    timings=raw.get("timings"),
                )
            except (json.JSONDecodeError, KeyError, TypeError, ValueError) as err:
                if lineno == len(lines):
                    break  # torn final line: crash signature, drop it.
                raise ArtifactError(
                    f"journal line {lineno} is corrupt",
                    path=self.path,
                    defect="garbled interior line",
                    cause=err,
                ) from err
            out.append(entry)
        return out

    def completed(self) -> set[str]:
        """Experiment ids whose *latest* entry has ``status == "ok"``."""
        latest: dict[str, str] = {}
        for entry in self.entries():
            latest[entry.exp_id] = entry.status
        return {exp_id for exp_id, status in latest.items() if status == "ok"}
