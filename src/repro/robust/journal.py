"""Append-only JSONL journal of an experiment run.

One line per finished experiment attempt::

    {"exp_id": "fig5", "status": "ok", "elapsed_s": 12.3, "attempts": 1,
     "finished_at": 1754460000.0, "error": null, "check": "1f2e3d..."}

The journal is the source of truth for ``--resume``: a later run reads it
back and skips every experiment already recorded with ``status == "ok"``.
Records are flushed and fsynced line-by-line, so a crash loses at most
the line being written — and the machinery tolerates exactly that, twice
over:

* **at read time**, a truncated or garbled *trailing* line (the
  signature of a crash mid-append) is dropped instead of raised on;
* **at write time**, :meth:`RunJournal.record` first truncates any torn
  trailing line, so appending after a hard kill starts on a fresh line
  instead of merging the new record into the torn one (which would turn
  a survivable torn tail into an unreadable *interior* line).

Every written record also carries a ``check`` field — a truncated
SHA-256 over the canonical payload — so *silent* mid-file corruption
(bit rot, a concurrent writer splicing bytes) is detected as a typed
:class:`~repro.robust.errors.ArtifactError` instead of being read back
as plausible-looking wrong data.  Checksums are verified when present
and never required: journals from older versions read back unchanged.
"""

from __future__ import annotations

import hashlib
import json
import os
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Optional

from .errors import ArtifactError

__all__ = ["JournalEntry", "RunJournal"]

#: statuses a journal entry may carry.
STATUSES = ("ok", "failed", "skipped")

#: hex digits of SHA-256 kept in each record's "check" field.
_CHECK_DIGITS = 16


def _checksum(payload: dict) -> str:
    """Truncated SHA-256 of the canonical (sorted, check-less) payload."""
    canon = json.dumps(
        {k: v for k, v in payload.items() if k != "check"}, sort_keys=True
    )
    return hashlib.sha256(canon.encode()).hexdigest()[:_CHECK_DIGITS]


@dataclass(frozen=True)
class JournalEntry:
    """One finished experiment attempt.

    Deliberately does *not* carry the on-disk ``check`` field: the
    checksum is a property of the stored line, not of the outcome, and
    entry payloads are compared across runs (journal parity) where a
    storage artifact must not participate.
    """

    exp_id: str
    status: str
    elapsed_s: float = 0.0
    attempts: int = 1
    finished_at: float = 0.0
    #: machine-readable error (ReproError.to_dict()) for failed entries.
    error: Optional[dict] = None
    #: per-stage wall seconds for this experiment (telemetry; optional).
    timings: Optional[dict] = None

    def to_json(self) -> str:
        payload = {
            "exp_id": self.exp_id,
            "status": self.status,
            "elapsed_s": round(self.elapsed_s, 3),
            "attempts": self.attempts,
            "finished_at": self.finished_at,
            "error": self.error,
        }
        if self.timings is not None:
            payload["timings"] = {k: round(v, 4) for k, v in self.timings.items()}
        return json.dumps(payload, sort_keys=True)


class RunJournal:
    """Append-only experiment journal at ``path``."""

    def __init__(self, path: str | Path):
        self.path = Path(path)

    def _repair_torn_tail(self) -> bool:
        """Truncate a torn final line (missing trailing newline).

        A hard kill mid-append leaves a partial last line; appending the
        next record directly after it would merge both into one garbled
        *interior* line that :meth:`entries` must treat as real
        corruption.  Truncating back to the last complete line keeps the
        journal append-safe across kills.  Returns True if bytes were
        removed.
        """
        try:
            data = self.path.read_bytes()
        except FileNotFoundError:
            return False
        if not data or data.endswith(b"\n"):
            return False
        cut = data.rfind(b"\n")
        with self.path.open("rb+") as fh:
            fh.truncate(cut + 1 if cut >= 0 else 0)
        return True

    def record(
        self,
        exp_id: str,
        status: str,
        *,
        elapsed_s: float = 0.0,
        attempts: int = 1,
        error: Optional[dict] = None,
        timings: Optional[dict] = None,
    ) -> JournalEntry:
        """Append one checksummed entry, flushed and fsynced before
        returning.

        ``elapsed_s`` and ``timings`` are monotonic-clock durations;
        ``finished_at`` is deliberately epoch time (a human-readable
        completion stamp, not used for arithmetic).
        """
        if status not in STATUSES:
            raise ValueError(f"status must be one of {STATUSES}, got {status!r}")
        entry = JournalEntry(
            exp_id=exp_id,
            status=status,
            elapsed_s=elapsed_s,
            attempts=attempts,
            finished_at=time.time(),
            error=error,
            timings=timings,
        )
        payload = json.loads(entry.to_json())
        payload["check"] = _checksum(payload)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._repair_torn_tail()
        with self.path.open("a") as fh:
            fh.write(json.dumps(payload, sort_keys=True) + "\n")
            fh.flush()
            os.fsync(fh.fileno())
        return entry

    def entries(self) -> list[JournalEntry]:
        """Read the journal back, tolerating a truncated trailing line.

        A garbled or checksum-failing line anywhere *except* the end is
        a real corruption and raises
        :class:`~repro.robust.errors.ArtifactError`; a bad final line is
        the expected signature of a crash mid-append and is dropped
        silently.  Records without a ``check`` field (older journals)
        are accepted unverified.
        """
        if not self.path.exists():
            return []
        out: list[JournalEntry] = []
        lines = self.path.read_text().splitlines()
        for lineno, line in enumerate(lines, start=1):
            if not line.strip():
                continue
            defect = "garbled interior line"
            try:
                raw = json.loads(line)
                if isinstance(raw, dict) and "check" in raw:
                    stated = raw.pop("check")
                    if stated != _checksum(raw):
                        defect = "checksum mismatch (silent corruption)"
                        raise ValueError(
                            f"stated checksum {stated!r} does not match payload"
                        )
                entry = JournalEntry(
                    exp_id=raw["exp_id"],
                    status=raw["status"],
                    elapsed_s=float(raw.get("elapsed_s", 0.0)),
                    attempts=int(raw.get("attempts", 1)),
                    finished_at=float(raw.get("finished_at", 0.0)),
                    error=raw.get("error"),
                    timings=raw.get("timings"),
                )
            except (json.JSONDecodeError, KeyError, TypeError, ValueError) as err:
                if lineno == len(lines):
                    break  # torn final line: crash signature, drop it.
                raise ArtifactError(
                    f"journal line {lineno} is corrupt",
                    path=self.path,
                    defect=defect,
                    cause=err,
                ) from err
            out.append(entry)
        return out

    def completed(self) -> set[str]:
        """Experiment ids whose *latest* entry has ``status == "ok"``."""
        latest: dict[str, str] = {}
        for entry in self.entries():
            latest[entry.exp_id] = entry.status
        return {exp_id for exp_id, status in latest.items() if status == "ok"}
