"""Replacement policies beyond true LRU.

The paper's simulator (and ours, by default) uses true LRU.  Real L1
instruction caches approximate it — tree-PLRU on most Intel parts, and
pseudo-random on several ARM designs.  The policy variants here back an
extension ablation: *does the layout win survive a realistic replacement
policy?*  (It should: layout optimization reduces the demand footprint,
which no replacement policy can conjure away.)

Each policy manages one set of ``assoc`` ways and exposes the same three
operations; :func:`repro.cache.setassoc.simulate_policy` drives them.

Implementations
---------------
* :class:`LRUSet` — true LRU (reference; equivalent to the fast-path
  simulator in :mod:`repro.cache.setassoc`).
* :class:`FIFOSet` — evict in insertion order; hits do not promote.
* :class:`TreePLRUSet` — tree pseudo-LRU: a binary tree of direction bits
  per set, as in Intel L1 caches; ``assoc`` must be a power of two.
* :class:`RandomSet` — seeded pseudo-random victim selection.
"""

from __future__ import annotations

import random
from typing import Optional

__all__ = ["LRUSet", "FIFOSet", "TreePLRUSet", "RandomSet", "make_policy", "POLICIES"]


class LRUSet:
    """True LRU over one set (reference implementation)."""

    __slots__ = ("assoc", "_lines",)

    def __init__(self, assoc: int, seed: int = 0):
        self.assoc = assoc
        self._lines: list[int] = []

    def lookup(self, line: int) -> bool:
        """Access ``line``; True on hit.  Misses install the line."""
        lines = self._lines
        try:
            lines.remove(line)
        except ValueError:
            lines.insert(0, line)
            if len(lines) > self.assoc:
                lines.pop()
            return False
        lines.insert(0, line)
        return True

    def contents(self) -> set[int]:
        return set(self._lines)


class FIFOSet:
    """First-in-first-out: hits do not update replacement state."""

    __slots__ = ("assoc", "_queue", "_members")

    def __init__(self, assoc: int, seed: int = 0):
        self.assoc = assoc
        self._queue: list[int] = []  # oldest last
        self._members: set[int] = set()

    def lookup(self, line: int) -> bool:
        if line in self._members:
            return True
        self._queue.insert(0, line)
        self._members.add(line)
        if len(self._queue) > self.assoc:
            victim = self._queue.pop()
            self._members.discard(victim)
        return False

    def contents(self) -> set[int]:
        return set(self._members)


class TreePLRUSet:
    """Tree pseudo-LRU over a power-of-two associativity.

    The ``assoc - 1`` internal nodes each hold one bit pointing toward the
    pseudo-least-recently-used half; an access flips the bits on its path
    to point *away* from the accessed way.
    """

    __slots__ = ("assoc", "_ways", "_bits")

    def __init__(self, assoc: int, seed: int = 0):
        if assoc & (assoc - 1):
            raise ValueError("tree-PLRU requires power-of-two associativity")
        self.assoc = assoc
        self._ways: list[Optional[int]] = [None] * assoc
        self._bits = [0] * max(1, assoc - 1)

    def _touch(self, way: int) -> None:
        """Point every node on the way's path away from it."""
        node = 0
        lo, hi = 0, self.assoc
        while hi - lo > 1:
            mid = (lo + hi) // 2
            if way < mid:
                self._bits[node] = 1  # PLRU side is the right half
                node = 2 * node + 1
                hi = mid
            else:
                self._bits[node] = 0  # PLRU side is the left half
                node = 2 * node + 2
                lo = mid
        # assoc == 1 has no internal nodes.

    def _victim(self) -> int:
        node = 0
        lo, hi = 0, self.assoc
        while hi - lo > 1:
            mid = (lo + hi) // 2
            if self._bits[node]:
                node = 2 * node + 2
                lo = mid
            else:
                node = 2 * node + 1
                hi = mid
        return lo

    def lookup(self, line: int) -> bool:
        ways = self._ways
        for way, resident in enumerate(ways):
            if resident == line:
                self._touch(way)
                return True
        for way, resident in enumerate(ways):
            if resident is None:
                ways[way] = line
                self._touch(way)
                return False
        way = self._victim()
        ways[way] = line
        self._touch(way)
        return False

    def contents(self) -> set[int]:
        return {w for w in self._ways if w is not None}


class RandomSet:
    """Seeded pseudo-random replacement."""

    __slots__ = ("assoc", "_ways", "_rng")

    def __init__(self, assoc: int, seed: int = 0):
        self.assoc = assoc
        self._ways: list[Optional[int]] = [None] * assoc
        self._rng = random.Random(seed)

    def lookup(self, line: int) -> bool:
        ways = self._ways
        if line in ways:
            return True
        for way, resident in enumerate(ways):
            if resident is None:
                ways[way] = line
                return False
        ways[self._rng.randrange(self.assoc)] = line
        return False

    def contents(self) -> set[int]:
        return {w for w in self._ways if w is not None}


#: policy name -> per-set class.
POLICIES = {
    "lru": LRUSet,
    "fifo": FIFOSet,
    "plru": TreePLRUSet,
    "random": RandomSet,
}


def make_policy(name: str, assoc: int, seed: int = 0):
    """Instantiate one set's replacement state by policy name."""
    try:
        cls = POLICIES[name]
    except KeyError:
        raise ValueError(f"unknown policy {name!r}; known: {', '.join(POLICIES)}") from None
    return cls(assoc, seed)
