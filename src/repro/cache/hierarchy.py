"""Two-level cache hierarchy: split L1 (I + D) over a unified L2.

Backs the paper's Eq. 1 — ``P(self.miss) = P(self.FP.(inst+data) +
peer.FP.(inst+data) >= C)`` — where instruction and data footprints
compete in the *unified* cache.  The modeled hierarchy follows the
evaluation machine (Xeon E5520): 32 KB/4-way L1I, 32 KB/8-way L1D, and a
256 KB/8-way unified L2, with all three shared by the two hyper-threads
of a core.

The simulators consume the merged instruction+data streams of
:func:`repro.engine.datastream.merged_stream`: every access probes its L1
(by the ``is_data`` tag); L1 misses probe the L2.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .config import CacheConfig
from .stats import CacheStats

__all__ = [
    "HierarchyConfig",
    "HierarchyStats",
    "PAPER_HIERARCHY",
    "simulate_hierarchy",
    "simulate_hierarchy_shared",
]


@dataclass(frozen=True)
class HierarchyConfig:
    """Geometry of the two-level hierarchy."""

    l1i: CacheConfig = CacheConfig(32 * 1024, 4, 64)
    l1d: CacheConfig = CacheConfig(32 * 1024, 8, 64)
    l2: CacheConfig = CacheConfig(256 * 1024, 8, 64)


#: the evaluation machine's per-core hierarchy.
PAPER_HIERARCHY = HierarchyConfig()


@dataclass
class HierarchyStats:
    """Per-level statistics of one thread."""

    l1i: CacheStats = field(default_factory=CacheStats)
    l1d: CacheStats = field(default_factory=CacheStats)
    l2: CacheStats = field(default_factory=CacheStats)

    @property
    def l2_miss_ratio_per_access(self) -> float:
        """L2 misses per L1 (I+D) access — the unified-cache pressure."""
        total = self.l1i.accesses + self.l1d.accesses
        return self.l2.misses / total if total else 0.0


class _Cache:
    """Minimal true-LRU set-associative cache used by the hierarchy."""

    __slots__ = ("sets", "mask", "assoc")

    def __init__(self, cfg: CacheConfig):
        self.sets: list[list[int]] = [[] for _ in range(cfg.n_sets)]
        self.mask = cfg.n_sets - 1
        self.assoc = cfg.assoc

    def lookup(self, line: int) -> bool:
        s = self.sets[line & self.mask]
        try:
            i = s.index(line)
        except ValueError:
            s.insert(0, line)
            if len(s) > self.assoc:
                s.pop()
            return False
        if i:
            s.insert(0, s.pop(i))
        return True


def _run(
    lines: list[int],
    is_data: list[bool],
    l1i: _Cache,
    l1d: _Cache,
    l2: _Cache,
    stats: HierarchyStats,
) -> None:
    for line, d in zip(lines, is_data):
        if d:
            st = stats.l1d
            hit = l1d.lookup(line)
        else:
            st = stats.l1i
            hit = l1i.lookup(line)
        st.accesses += 1
        if hit:
            continue
        st.misses += 1
        stats.l2.accesses += 1
        if not l2.lookup(line):
            stats.l2.misses += 1


def simulate_hierarchy(
    lines: np.ndarray, is_data: np.ndarray, cfg: HierarchyConfig = PAPER_HIERARCHY
) -> HierarchyStats:
    """Run one merged stream through the two-level hierarchy (solo)."""
    if lines.shape != is_data.shape:
        raise ValueError("lines and is_data must align")
    stats = HierarchyStats()
    _run(
        lines.tolist(),
        is_data.tolist(),
        _Cache(cfg.l1i),
        _Cache(cfg.l1d),
        _Cache(cfg.l2),
        stats,
    )
    return stats


def simulate_hierarchy_shared(
    streams: list[tuple[np.ndarray, np.ndarray]],
    cfg: HierarchyConfig = PAPER_HIERARCHY,
    *,
    quantum: int = 8,
) -> list[HierarchyStats]:
    """SMT co-run through one shared hierarchy (L1I, L1D and L2 are all
    per-core and therefore shared by the hyper-threads).

    Streams wrap until every thread has completed at least one pass, as in
    :func:`repro.cache.shared.simulate_shared`; per-thread stats cover all
    issued accesses.
    """
    n_threads = len(streams)
    if n_threads == 0:
        return []
    if quantum < 1:
        raise ValueError("quantum must be >= 1")
    data = [
        (lines.tolist(), is_data.tolist()) for lines, is_data in streams
    ]
    lengths = [len(d[0]) for d in data]
    stats = [HierarchyStats() for _ in range(n_threads)]
    done = [n == 0 for n in lengths]
    cursors = [0] * n_threads

    l1i, l1d, l2 = _Cache(cfg.l1i), _Cache(cfg.l1d), _Cache(cfg.l2)

    while not all(done):
        progressed = False
        for t in range(n_threads):
            n = lengths[t]
            if n == 0:
                continue
            pos = cursors[t]
            end = min(pos + quantum, n)
            lines_t, is_data_t = data[t]
            _run(lines_t[pos:end], is_data_t[pos:end], l1i, l1d, l2, stats[t])
            progressed = progressed or end > pos
            if end >= n:
                done[t] = True
                if all(done):
                    cursors[t] = n
                else:
                    cursors[t] = 0
            else:
                cursors[t] = end
        if not progressed:  # pragma: no cover - guards infinite loops
            break
    return stats
