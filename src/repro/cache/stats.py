"""Cache simulation statistics."""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["CacheStats"]


@dataclass
class CacheStats:
    """Access/miss counters for one thread's view of a cache simulation.

    ``accesses`` counts cache-line lookups (the simulator's unit of work);
    hardware-style miss *ratios* over instructions are computed by
    :mod:`repro.machine.counters`, which knows the instruction counts.
    """

    accesses: int = 0
    misses: int = 0
    #: lines installed by the prefetcher (0 without prefetching).
    prefetches: int = 0
    #: demand misses avoided because a prefetched line was present.
    prefetch_hits: int = 0

    @property
    def hits(self) -> int:
        return self.accesses - self.misses

    @property
    def miss_ratio(self) -> float:
        """Misses per line access (0.0 for an empty run)."""
        return self.misses / self.accesses if self.accesses else 0.0

    def merged_with(self, other: "CacheStats") -> "CacheStats":
        return CacheStats(
            accesses=self.accesses + other.accesses,
            misses=self.misses + other.misses,
            prefetches=self.prefetches + other.prefetches,
            prefetch_hits=self.prefetch_hits + other.prefetch_hits,
        )
