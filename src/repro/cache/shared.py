"""Shared-cache co-run simulation (SMT hyper-threading).

When two programs co-run on the hyper-threads of one core, they share the
L1 instruction cache.  This simulator interleaves the threads' fetch
streams into one shared set-associative LRU cache and reports per-thread
statistics — the reproduction of the paper's "CMP L1 instruction cache"
Pin extension.

Interleaving policy: round-robin quanta of ``quantum`` line accesses per
thread, modeling the alternating fetch slots of SMT front-ends.  A thread
whose stream ends is restarted from the beginning (``wrap=True``, the
standard co-run methodology: the probe program is re-run until the measured
program completes), or drops out (``wrap=False``).  The simulation stops
once every thread has completed at least one full pass of its stream.

Per-thread stats cover all accesses the thread actually issued (including
wrapped passes), so miss ratios remain well-defined for both threads.

Prefetch attribution: the shared next-line prefetcher is one hardware
resource, so a line prefetched on thread A's miss can be consumed by
thread B.  The politeness accounting must not conflate those: per-thread
``prefetches`` counts lines the thread *issued*, and consumed hits are
split into ``prefetch_hits_self`` (the consuming thread also issued the
prefetch — self-help) and ``prefetch_hits_cross`` (a peer issued it —
peer-help received).  ``prefetch_hits`` remains the consumer-side total,
``self + cross``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .config import CacheConfig
from .stats import CacheStats

__all__ = ["SharedCacheStats", "simulate_shared"]


@dataclass
class SharedCacheStats(CacheStats):
    """One thread's view of a shared-cache co-run.

    Extends :class:`CacheStats` with the issuer-aware prefetch split:
    ``prefetches`` counts prefetches this thread *issued* (its demand
    misses triggered them); ``prefetch_hits`` counts prefetched lines
    this thread *consumed*, split into ``prefetch_hits_self`` (it issued
    the prefetch itself) and ``prefetch_hits_cross`` (a co-running peer
    issued it).  Invariant: ``prefetch_hits == prefetch_hits_self +
    prefetch_hits_cross``, pinned by the test suite.
    """

    #: consumed prefetched lines this thread also issued (self-help).
    prefetch_hits_self: int = 0
    #: consumed prefetched lines a peer thread issued (peer-help received).
    prefetch_hits_cross: int = 0


def simulate_shared(
    streams: list[np.ndarray],
    cfg: CacheConfig,
    *,
    quantum: int = 8,
    wrap: bool = True,
    prefetch: bool = False,
) -> list[SharedCacheStats]:
    """Co-run ``streams`` in one shared cache; returns per-thread stats.

    ``quantum`` is the number of consecutive line accesses a thread issues
    before yielding (SMT fetch granularity).  With ``prefetch`` the shared
    next-line prefetcher runs for all threads (as on real SMT cores, where
    the L1I prefetcher is a shared resource); each pending prefetched line
    remembers its issuing thread so consumption is attributed self vs.
    cross (see :class:`SharedCacheStats`).
    """
    n_threads = len(streams)
    if n_threads == 0:
        return []
    if quantum < 1:
        raise ValueError("quantum must be >= 1")

    lists = [
        s.tolist() if isinstance(s, np.ndarray) else list(s) for s in streams
    ]
    lengths = [len(s) for s in lists]
    stats = [SharedCacheStats() for _ in range(n_threads)]
    # Threads with empty streams are complete from the start.
    done = [n == 0 for n in lengths]
    cursors = [0] * n_threads

    sets: list[list[int]] = [[] for _ in range(cfg.n_sets)]
    #: pending prefetched line -> thread that issued the prefetch.
    prefetched: dict[int, int] = {}
    mask = cfg.n_sets - 1
    assoc = cfg.assoc

    active = [t for t in range(n_threads) if lengths[t] > 0]
    while not all(done):
        progressed = False
        for t in active:
            stream = lists[t]
            n = lengths[t]
            if n == 0:
                continue
            st = stats[t]
            pos = cursors[t]
            end = min(pos + quantum, n)
            accesses = 0
            misses = 0
            for k in range(pos, end):
                line = stream[k]
                accesses += 1
                s = sets[line & mask]
                try:
                    i = s.index(line)
                except ValueError:
                    misses += 1
                    s.insert(0, line)
                    if len(s) > assoc:
                        prefetched.pop(s.pop(), None)
                    if prefetch:
                        nxt = line + 1
                        ns = sets[nxt & mask]
                        # Never let the prefetch evict its own demand
                        # line (single-set, single-way geometry); same
                        # guard as the solo simulator.
                        if nxt not in ns and not (
                            len(ns) >= assoc and ns[-1] == line
                        ):
                            st.prefetches += 1
                            prefetched[nxt] = t
                            ns.insert(0, nxt)
                            if len(ns) > assoc:
                                prefetched.pop(ns.pop(), None)
                    continue
                if i:
                    s.insert(0, s.pop(i))
                if prefetch and line in prefetched:
                    issuer = prefetched.pop(line)
                    st.prefetch_hits += 1
                    if issuer == t:
                        st.prefetch_hits_self += 1
                    else:
                        st.prefetch_hits_cross += 1
            st.accesses += accesses
            st.misses += misses
            progressed = progressed or accesses > 0
            if end >= n:
                done[t] = True
                if wrap and not all(done):
                    cursors[t] = 0
                else:
                    cursors[t] = n
                    if not wrap:
                        # Thread leaves the core; stop issuing for it.
                        lengths[t] = 0
            else:
                cursors[t] = end
        if not progressed:  # pragma: no cover - guards infinite loops
            break
    return stats
