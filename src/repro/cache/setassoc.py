"""Event-driven set-associative LRU cache simulation (solo runs).

This is the reproduction's stand-in for the paper's Pin-based instruction
cache simulator.  It consumes the line-index streams produced by
:mod:`repro.engine.fetch` and reports :class:`~repro.cache.stats.CacheStats`.

Replacement is true LRU per set.  An optional *next-line prefetcher* models
the dominant hardware effect the paper credits for the gap between
hardware-counter and simulator miss reductions: on every demand miss of
line ``L``, line ``L+1`` is installed as well (tagged prefetch).  The clean
simulator channel runs with ``prefetch=False``; the hardware-counter channel
(:mod:`repro.machine.counters`) runs with ``prefetch=True``.

Implementation note: LRU is not vectorizable, so this is a deliberately
tight Python loop — per-set Python lists with C-speed ``list.index`` /
``insert`` / ``pop``, stream pre-converted via ``tolist()``.  Profiled at
roughly 2M accesses/second, which keeps the full benchmark matrix in
minutes (HPC guide: measure first; optimize the measured bottleneck).
"""

from __future__ import annotations

import numpy as np

from .config import CacheConfig
from .stats import CacheStats

__all__ = ["simulate", "warm_cache", "CacheState"]


class CacheState:
    """Mutable cache contents, reusable across simulation calls.

    Exposed so co-run simulations and warm-start experiments can share and
    inspect state; most callers use :func:`simulate` directly.
    """

    __slots__ = ("cfg", "sets", "prefetched")

    def __init__(self, cfg: CacheConfig):
        self.cfg = cfg
        self.sets: list[list[int]] = [[] for _ in range(cfg.n_sets)]
        self.prefetched: set[int] = set()

    def resident_lines(self) -> set[int]:
        """All line indices currently cached."""
        return {line for s in self.sets for line in s}


def simulate(
    lines: np.ndarray,
    cfg: CacheConfig,
    *,
    prefetch: bool = False,
    state: CacheState | None = None,
) -> CacheStats:
    """Run ``lines`` through a set-associative LRU cache.

    Parameters
    ----------
    lines: int array of line indices (byte address // line size).
    cfg: cache geometry.
    prefetch: enable the next-line prefetcher.
    state: optional pre-existing cache state (warm start); mutated in place.
    """
    if state is None:
        state = CacheState(cfg)
    elif state.cfg != cfg:
        raise ValueError("state was built for a different cache configuration")

    sets = state.sets
    prefetched = state.prefetched
    mask = cfg.n_sets - 1
    assoc = cfg.assoc
    stats = CacheStats()
    misses = 0
    accesses = 0
    n_prefetch = 0
    n_prefetch_hits = 0

    stream = lines.tolist() if isinstance(lines, np.ndarray) else list(lines)
    for line in stream:
        accesses += 1
        s = sets[line & mask]
        try:
            i = s.index(line)
        except ValueError:
            misses += 1
            s.insert(0, line)
            if len(s) > assoc:
                victim = s.pop()
                prefetched.discard(victim)
            if prefetch:
                nxt = line + 1
                ns = sets[nxt & mask]
                # A tagged prefetch must never evict the demand line that
                # triggered it.  That is only possible when L and L+1 map
                # to the same set (n_sets == 1) and L sits in the victim
                # way (assoc == 1) — degenerate geometry, but silently
                # re-missing the demand line corrupted miss counts there.
                if nxt not in ns and not (len(ns) >= assoc and ns[-1] == line):
                    n_prefetch += 1
                    prefetched.add(nxt)
                    ns.insert(0, nxt)
                    if len(ns) > assoc:
                        victim = ns.pop()
                        prefetched.discard(victim)
            continue
        if i:
            s.insert(0, s.pop(i))
        if prefetch and line in prefetched:
            prefetched.discard(line)
            n_prefetch_hits += 1

    stats.accesses = accesses
    stats.misses = misses
    stats.prefetches = n_prefetch
    stats.prefetch_hits = n_prefetch_hits
    return stats


def warm_cache(lines: np.ndarray, cfg: CacheConfig, *, prefetch: bool = False) -> CacheState:
    """Return the cache state after running ``lines`` (for warm-start tests)."""
    state = CacheState(cfg)
    simulate(lines, cfg, prefetch=prefetch, state=state)
    return state


def simulate_policy(
    lines: np.ndarray,
    cfg: CacheConfig,
    policy: str = "lru",
    seed: int = 0,
    *,
    prefetch: bool = False,
    state: CacheState | None = None,
) -> CacheStats:
    """Simulate under an alternative replacement policy.

    Slower than :func:`simulate` (polymorphic per-set objects instead of
    the tuned LRU loop); used by the replacement-policy ablation.  With
    ``policy="lru"`` the miss counts match :func:`simulate` exactly, which
    the test suite verifies.

    ``prefetch`` and ``state`` exist for signature compatibility with
    :func:`simulate` but are **not implemented** for the polymorphic
    policy sets; passing either raises :class:`ValueError` instead of
    silently simulating something else.
    """
    if prefetch:
        raise ValueError(
            "simulate_policy does not support the next-line prefetcher; "
            "use simulate() for prefetch-enabled runs"
        )
    if state is not None:
        raise ValueError(
            "simulate_policy does not support warm-start state; "
            "use simulate() for warm-start runs"
        )
    from .policies import make_policy

    sets = [make_policy(policy, cfg.assoc, seed + i) for i in range(cfg.n_sets)]
    mask = cfg.n_sets - 1
    stats = CacheStats()
    misses = 0
    stream = lines.tolist() if isinstance(lines, np.ndarray) else list(lines)
    for line in stream:
        if not sets[line & mask].lookup(line):
            misses += 1
    stats.accesses = len(stream)
    stats.misses = misses
    return stats
