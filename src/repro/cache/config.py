"""Cache geometry.

The paper's configuration — both on the Xeon E5520 and in the Pin-based
simulator — is a 32 KB, 4-way set-associative L1 instruction cache with
64-byte lines.  :data:`PAPER_L1I` captures it; everything else is derived.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["CacheConfig", "PAPER_L1I"]


def _is_pow2(x: int) -> bool:
    return x > 0 and (x & (x - 1)) == 0


@dataclass(frozen=True)
class CacheConfig:
    """Geometry of one set-associative cache."""

    size_bytes: int = 32 * 1024
    assoc: int = 4
    line_bytes: int = 64

    def __post_init__(self) -> None:
        if not _is_pow2(self.line_bytes):
            raise ValueError("line_bytes must be a power of two")
        if self.assoc < 1:
            raise ValueError("assoc must be >= 1")
        if self.size_bytes % (self.assoc * self.line_bytes):
            raise ValueError("size must be a multiple of assoc * line size")
        if not _is_pow2(self.n_sets):
            raise ValueError("number of sets must be a power of two")

    @property
    def n_lines(self) -> int:
        """Total capacity in lines."""
        return self.size_bytes // self.line_bytes

    @property
    def n_sets(self) -> int:
        return self.size_bytes // (self.assoc * self.line_bytes)

    def set_of_line(self, line: int) -> int:
        """Cache set index of a line index (line = byte address // line size)."""
        return line & (self.n_sets - 1)

    def describe(self) -> str:
        return (
            f"{self.size_bytes // 1024}KB, {self.assoc}-way, "
            f"{self.line_bytes}B lines ({self.n_sets} sets)"
        )


#: The paper's L1 instruction cache: 32 KB, 4-way, 64 B lines.
PAPER_L1I = CacheConfig(size_bytes=32 * 1024, assoc=4, line_bytes=64)
