"""Exact stack-distance LRU kernel: every associativity in one pass.

LRU obeys an *inclusion property*: at any instant an A-way set holds
exactly the A most-recently-used distinct lines that map to it.  An
access therefore hits iff its **stack distance** — the number of
distinct same-set lines touched since its previous access — is smaller
than the associativity, and a single pass that records the *histogram*
of stack distances answers the miss count of every associativity of a
given ``n_sets`` at once:

    ``misses(A) = cold + sum_{d >= A} hist[d]``

where ``cold`` counts first-touch (compulsory) accesses.  The scalar
loop in :mod:`repro.cache.setassoc` re-runs the whole stream once per
associativity; this kernel replaces an A-point associativity sweep with
one pass (see ``docs/algorithms.md`` for the derivation and
``docs/performance.md`` for measured speedups).

Three interchangeable constructions, parity-tested against each other
and against the event-driven simulator:

* ``method="sweep"`` (default) — the batch offline sweep: no per-access
  Python loop at all.  Stack distances are recovered from the
  previous-occurrence / dominance-count identity
  ``d_i = #{k in (p_i, i) : prev[k] <= p_i}`` — after partitioning and
  distance-0 stripping, the left-rank counts reduce to a pure
  permutation problem solved by a chunked Fenwick-style decomposition:
  a 2D block-grid cumulative histogram for cross-block pairs plus
  64-wide bitset rows (``uint64`` masks + popcount) for the partial and
  within-block pairs.  Everything is whole-array NumPy work.
* ``method="mtf"`` — per-set move-to-front lists.  Set partitioning,
  per-set access counts, and the dominant distance-0 accesses
  (immediate same-line repeats, the bulk of real fetch streams) are all
  handled vectorized in NumPy; only the stack-changing accesses reach
  the Python loop, which reuses the same C-speed
  ``list.index``/``insert``/``pop`` machinery as the scalar simulator.
  Worst case O(n·m) for m distinct lines per set, but on fetch streams
  the average scan depth is a handful of entries.
* ``method="bit"`` — the textbook O(n log n) construction: line ids are
  compacted through one global ``np.unique``, and a Fenwick tree
  (binary indexed tree) over set-local positions maintains one mark per
  distinct line at its latest access, so the
  distinct-since-last-access count is a range sum.  Kept as the
  algorithmic reference; the pure-Python tree walk makes it slower than
  MTF under CPython, which the benchmark suite documents.

The kernel only models what stack distances can express: a **cold**
cache, **no prefetcher**, true LRU.  Prefetching, warm-start state, and
co-run interleaving all change set contents in ways a single reuse
histogram cannot capture — those paths stay on the event-driven
simulators, and :func:`simulate_fast` refuses them loudly rather than
silently diverge.
"""

from __future__ import annotations

import numpy as np

from .config import CacheConfig
from .stats import CacheStats

__all__ = [
    "DistanceHistogram",
    "per_line_misses",
    "simulate_fast",
    "stack_distance_histogram",
    "sweep_stats",
]


class DistanceHistogram:
    """Per-set LRU stack-distance histogram of one access stream.

    ``hist[d]`` counts accesses whose stack distance is exactly ``d``
    (0-indexed position in the set's LRU stack at access time); ``cold``
    counts first touches.  Because every line maps to exactly one set,
    ``cold`` equals the number of distinct lines in the stream.  The
    histogram is trimmed (no trailing zeros), so two constructions of
    the same stream compare equal.
    """

    __slots__ = ("n_sets", "accesses", "cold", "hist", "_tail")

    def __init__(self, n_sets: int, accesses: int, cold: int, hist: np.ndarray):
        self.n_sets = int(n_sets)
        self.accesses = int(accesses)
        self.cold = int(cold)
        self.hist = np.asarray(hist, dtype=np.int64)
        self._tail: np.ndarray | None = None

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, DistanceHistogram):
            return NotImplemented
        return (
            self.n_sets == other.n_sets
            and self.accesses == other.accesses
            and self.cold == other.cold
            and np.array_equal(self.hist, other.hist)
        )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"DistanceHistogram(n_sets={self.n_sets}, accesses={self.accesses}, "
            f"cold={self.cold}, max_distance={len(self.hist) - 1})"
        )

    def misses(self, assoc: int) -> int:
        """Exact LRU miss count at ``assoc`` ways (cold + far reuses)."""
        if assoc < 1:
            raise ValueError("assoc must be >= 1")
        if self._tail is None:
            # _tail[i] = number of accesses with distance >= i.
            self._tail = np.concatenate(
                [np.cumsum(self.hist[::-1])[::-1], np.zeros(1, dtype=np.int64)]
            )
        return self.cold + int(self._tail[min(assoc, len(self.hist))])

    def stats(self, assoc: int) -> CacheStats:
        """The :class:`CacheStats` a cold, prefetch-free LRU run would report."""
        return CacheStats(accesses=self.accesses, misses=self.misses(assoc))

    # -- persistence (see repro.perf.memo) ---------------------------------

    def to_dict(self) -> dict:
        return {
            "n_sets": self.n_sets,
            "accesses": self.accesses,
            "cold": self.cold,
            "hist": [int(c) for c in self.hist],
        }

    @classmethod
    def from_dict(cls, raw: dict) -> "DistanceHistogram":
        return cls(
            n_sets=int(raw["n_sets"]),
            accesses=int(raw["accesses"]),
            cold=int(raw["cold"]),
            hist=np.asarray(raw["hist"], dtype=np.int64),
        )


def _canonical_stream(lines: np.ndarray) -> np.ndarray:
    arr = np.asarray(lines)
    if arr.ndim != 1:
        raise ValueError("lines must be one-dimensional")
    return arr.astype(np.int64, copy=False)


def _partition(arr: np.ndarray, n_sets: int) -> tuple[np.ndarray, np.ndarray]:
    """Stable set partition: per-set subsequences in time order.

    Returns the partitioned stream (sets contiguous, each set's accesses
    in original order) and the per-set access counts.
    """
    if n_sets == 1:
        return arr, np.array([arr.shape[0]], dtype=np.int64)
    sets = arr & (n_sets - 1)
    # Narrow the sort key: the stable argsort is a radix sort whose pass
    # count tracks the key width, and set indices fit one or two bytes.
    if n_sets <= 256:
        key = sets.astype(np.uint8)
    elif n_sets <= 65536:
        key = sets.astype(np.uint16)
    else:
        key = sets
    order = np.argsort(key, kind="stable")
    return arr[order], np.bincount(sets, minlength=n_sets)


def _strip_d0(
    part: np.ndarray, counts: np.ndarray
) -> tuple[np.ndarray, np.ndarray, int]:
    """Drop distance-0 accesses (immediate same-line repeats) up front.

    A same-line repeat across a set boundary is impossible (a line maps
    to one set), so one adjacent-equality scan over the partitioned
    stream finds every distance-0 access.  They never change a stack;
    callers count them straight into ``hist[0]``.  Returns the stripped
    stream, the shrunken per-set counts, and the repeat count.
    """
    n = part.shape[0]
    dup = np.empty(n, dtype=bool)
    dup[0] = False
    np.equal(part[1:], part[:-1], out=dup[1:])
    n_d0 = int(np.count_nonzero(dup))
    if n_d0:
        n_sets = counts.shape[0]
        if n_sets > 1:
            counts = counts - np.bincount(part[dup] & (n_sets - 1), minlength=n_sets)
        else:
            counts = counts - n_d0
        part = part[~dup]
    return part, counts, n_d0


def _set_bounds(counts: np.ndarray) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Start/end offsets of each non-empty set in the partitioned stream."""
    ends = np.cumsum(counts)
    starts = ends - counts
    nonempty = np.flatnonzero(counts)
    return starts[nonempty], ends[nonempty], nonempty


def _trim(hist: list[int]) -> np.ndarray:
    arr = np.asarray(hist, dtype=np.int64)
    return np.trim_zeros(arr, "b")


def _mtf_histogram(part: np.ndarray, counts: np.ndarray) -> tuple[int, np.ndarray]:
    """Move-to-front distances over the partitioned stream.

    Distance-0 accesses are immediate same-line repeats inside a set's
    subsequence; a same-line repeat across a set boundary is impossible
    (a line maps to one set), so one vectorized adjacent-equality scan
    finds all of them.  They never change a stack, so they are counted
    into ``hist[0]`` and dropped before the Python loop — on real fetch
    streams that removes the large majority of iterations.
    """
    part, counts, n_d0 = _strip_d0(part, counts)
    stream = part.tolist()
    hist: list[int] = [n_d0]
    cold = 0
    starts, ends, _ = _set_bounds(counts)
    for pos, end in zip(starts.tolist(), ends.tolist()):
        stack: list[int] = []
        index = stack.index
        insert = stack.insert
        pop = stack.pop
        for line in stream[pos:end]:
            try:
                d = index(line)
            except ValueError:
                cold += 1
                insert(0, line)
                continue
            # d >= 1 always: the d == 0 repeats were stripped above.
            insert(0, pop(d))
            if d < len(hist):
                hist[d] += 1
            else:
                hist.extend([0] * (d + 1 - len(hist)))
                hist[d] = 1
    return cold, _trim(hist)


def _bit_histogram(part: np.ndarray, counts: np.ndarray) -> tuple[int, np.ndarray]:
    """Fenwick-tree distances over the partitioned stream (O(n log n)).

    Line values are compacted to dense ids by one *global* ``np.unique``
    (a line maps to exactly one set, so ids never collide across sets
    and one shared last-position table serves every set), and a Fenwick
    tree over set-local access positions keeps one mark at the latest
    access of each distinct line.  At an access whose previous
    occurrence sits at position ``p``, the marked count in ``(p, i-1]``
    is exactly the number of distinct *other* lines touched since — the
    stack distance.  The mark then moves from ``p`` to ``i``.
    """
    cold = 0
    hist: list[int] = []
    gids = np.unique(part, return_inverse=True)[1]
    ids = gids.tolist()
    last = [0] * (int(gids.max()) + 1 if ids else 0)
    starts, ends, _ = _set_bounds(counts)
    for pos, end in zip(starts.tolist(), ends.tolist()):
        cnt = end - pos
        tree = [0] * (cnt + 1)
        for i, lid in enumerate(ids[pos:end], start=1):
            p = last[lid]
            if p:
                d = 0
                j = i - 1
                while j:
                    d += tree[j]
                    j -= j & -j
                j = p
                while j:
                    d -= tree[j]
                    j -= j & -j
                if d < len(hist):
                    hist[d] += 1
                else:
                    hist.extend([0] * (d + 1 - len(hist)))
                    hist[d] = 1
                j = p
                while j <= cnt:
                    tree[j] -= 1
                    j += j & -j
            else:
                cold += 1
            j = i
            while j <= cnt:
                tree[j] += 1
                j += j & -j
            last[lid] = i
    return cold, _trim(hist)


#: sweep row width: rows fit one uint64 bitmask.
_ROW = 64


def _count_left_smaller_rows(rows: np.ndarray, out_rows: np.ndarray) -> None:
    """Per element: strictly-smaller elements to its left within its row.

    ``rows`` is ``(r, 64)``; each row is handled with one uint64 bitmask
    per element.  In per-row value order (``argsort``), the running OR of
    position bits gives the columns holding smaller-or-equal values;
    xor-ing the own bit leaves strictly-smaller, masking with
    ``bit - 1`` keeps strictly-left, and a popcount collapses the mask.
    All rows go through each step together — no per-element Python work.
    """
    sig = np.argsort(rows, axis=1, kind="stable")
    sigu = sig.view(np.uint64)
    bits = np.left_shift(np.uint64(1), sigu)
    cum = np.bitwise_or.accumulate(bits, axis=1)
    np.bitwise_xor(cum, bits, out=cum)  # strictly-smaller columns
    np.subtract(bits, np.uint64(1), out=bits)  # strictly-left columns
    np.bitwise_and(cum, bits, out=cum)
    np.put_along_axis(out_rows, sig, np.bitwise_count(cum), axis=1)


def _left_rank_permutation(vrank: np.ndarray) -> np.ndarray:
    """``c_i = #{k < i : vrank[k] < vrank[i]}`` for a permutation.

    Chunked Fenwick-style decomposition into three disjoint pair
    classes: *cross* pairs (earlier position block AND smaller value
    bucket) from a 2D block-grid cumulative histogram; *partial* pairs
    (same value bucket, earlier position block) and *within* pairs (same
    position block) from 64-wide bitset rows.  O(m·(m/64 + log 64))
    array work with no Python-level loop.
    """
    m = vrank.shape[0]
    if m == 0:
        return np.zeros(0, dtype=np.int64)
    W = _ROW
    if m <= 2 * W:
        cmp = vrank[None, :] < vrank[:, None]
        tril = np.tri(m, m, -1, dtype=bool)
        return (cmp & tril).sum(axis=1, dtype=np.int64)
    npb = -(-m // W)
    padded = npb * W
    pos = np.arange(m, dtype=np.int64)
    pb = pos // W
    vb = vrank // W
    H = np.bincount(pb * npb + vb, minlength=npb * npb).astype(np.int32)
    A = H.reshape(npb, npb).cumsum(axis=1, dtype=np.int32)
    C = np.ascontiguousarray(A.T).cumsum(axis=1, dtype=np.int32)  # C[vb, pb]
    Cp = np.zeros((npb + 1, npb + 1), dtype=np.int32)
    Cp[1:, 1:] = C
    c = Cp.ravel()[vb * (npb + 1) + pb].astype(np.int64)
    # Partial bucket (value-order rows): tie-break equal position blocks
    # by *descending* column so they never count as smaller.
    posn = np.empty(m, dtype=np.int64)
    posn[vrank] = pos
    keys = np.empty(padded, dtype=np.int64)
    kv = keys[:m]
    np.floor_divide(posn, W, out=kv)
    kv *= W
    kv += (W - 1) - (pos % W)
    keys[m:] = np.iinfo(np.int64).max
    out_rows = np.empty((npb, W), dtype=np.uint8)
    _count_left_smaller_rows(keys.reshape(npb, W), out_rows)
    c[posn] += out_rows.reshape(-1)[:m]
    # Within position block (time-order rows).
    keys[:m] = vrank
    _count_left_smaller_rows(keys.reshape(npb, W), out_rows)
    c += out_rows.reshape(-1)[:m]
    return c


def _sweep_histogram(part: np.ndarray, counts: np.ndarray) -> tuple[int, np.ndarray]:
    """Batch offline sweep: whole-histogram distances with no access loop.

    On the d0-stripped partitioned stream, an access ``i`` with previous
    same-line occurrence at global position ``p_i`` has stack distance
    ``d_i = #{k in (p_i, i) : prev[k] <= p_i}`` — the lines touched
    since ``p_i`` whose own previous occurrence precedes ``p_i``
    (distinct, same set — earlier-set positions cancel out of the
    subtraction).  Cold accesses get the sentinel ``base_of_set - 1`` so
    they threshold like everyone else.  Splitting the left-rank count
    into a cold-prefix cumsum plus a pure-permutation rank (the non-cold
    thresholds are distinct) hands the hard part to
    :func:`_left_rank_permutation`.
    """
    part, counts, n_d0 = _strip_d0(part, counts)
    m = part.shape[0]
    if m == 0:
        return 0, _trim([n_d0])
    n_sets = counts.shape[0]
    order = np.argsort(part, kind="stable")
    sorted_part = part[order]
    first = np.empty(m, dtype=bool)
    first[0] = True
    np.not_equal(sorted_part[1:], sorted_part[:-1], out=first[1:])
    prevg = np.empty(m, dtype=np.int64)
    if m > 1:
        prevg[order[1:]] = order[:-1]
    cold_pos = order[first]
    cold = int(cold_pos.shape[0])
    if cold == m:
        return cold, _trim([n_d0])
    if n_sets > 1:
        base = np.zeros(n_sets, dtype=np.int64)
        np.cumsum(counts[:-1], out=base[1:])
        prevg[cold_pos] = base[part[cold_pos] & (n_sets - 1)] - 1
    else:
        prevg[cold_pos] = -1
    noncold = np.ones(m, dtype=bool)
    noncold[cold_pos] = False
    p = prevg[noncold]
    cold_before = np.cumsum(~noncold)
    # Non-cold thresholds are exactly the positions with a *next* same-line
    # occurrence, so their value rank follows from one boolean cumsum —
    # no extra argsort.
    is_prev = np.zeros(m, dtype=bool)
    is_prev[p] = True
    vrank = (np.cumsum(is_prev) - 1)[p]
    d = _left_rank_permutation(vrank)
    d += cold_before[noncold]
    d -= p
    d -= 1
    hist = np.bincount(d, minlength=1)
    hist[0] += n_d0
    return cold, _trim(hist)


_METHODS = {
    "sweep": _sweep_histogram,
    "mtf": _mtf_histogram,
    "bit": _bit_histogram,
}


def stack_distance_histogram(
    lines: np.ndarray, n_sets: int, *, method: str = "sweep"
) -> DistanceHistogram:
    """Exact per-set LRU stack-distance histogram of ``lines``.

    ``n_sets`` must be a power of two (set index is ``line & (n_sets-1)``,
    as in the event-driven simulators).  The result answers the miss
    count of *every* associativity at this ``n_sets`` — see
    :meth:`DistanceHistogram.misses`.
    """
    if n_sets < 1 or n_sets & (n_sets - 1):
        raise ValueError("n_sets must be a positive power of two")
    try:
        build = _METHODS[method]
    except KeyError:
        raise ValueError(
            f"unknown method {method!r}; known: {', '.join(_METHODS)}"
        ) from None
    arr = _canonical_stream(lines)
    n = arr.shape[0]
    if n == 0:
        return DistanceHistogram(n_sets, 0, 0, np.zeros(0, dtype=np.int64))
    part, counts = _partition(arr, n_sets)
    cold, hist = build(part, counts)
    return DistanceHistogram(n_sets=n_sets, accesses=n, cold=cold, hist=hist)


def simulate_fast(
    lines: np.ndarray,
    cfg: CacheConfig,
    *,
    prefetch: bool = False,
    state=None,
    method: str = "sweep",
) -> CacheStats:
    """Drop-in for cold, prefetch-free :func:`repro.cache.setassoc.simulate`.

    Bit-identical to the scalar simulator on its supported domain
    (enforced by the randomized parity suite in
    ``tests/cache/test_fastsim.py``).  Prefetch and warm-start runs are
    outside the stack-distance model and raise :class:`ValueError` —
    the kernel refuses rather than silently diverge.
    """
    if prefetch:
        raise ValueError(
            "the stack-distance kernel models a prefetch-free cache; "
            "use repro.cache.setassoc.simulate for prefetch runs"
        )
    if state is not None:
        raise ValueError(
            "the stack-distance kernel models a cold cache; "
            "use repro.cache.setassoc.simulate for warm-start runs"
        )
    return stack_distance_histogram(lines, cfg.n_sets, method=method).stats(cfg.assoc)


def per_line_misses(lines: np.ndarray, cfg: CacheConfig) -> dict[int, int]:
    """Exact LRU miss count *per line* under ``cfg`` (cold included).

    The attribution the aggregate histogram cannot answer: which lines
    eat the misses.  Used by the static-analysis certification mode
    (:mod:`repro.staticlint.certify`) to rank-correlate predicted
    conflict scores against measured per-line miss volume.  Same model
    domain as the kernel (cold cache, no prefetch, true LRU); the summed
    counts equal :meth:`DistanceHistogram.misses` at ``cfg.assoc``
    exactly (pinned by the parity tests).

    Returns a dict mapping line index to its miss count; lines that
    never miss (or never appear) are absent.
    """
    arr = _canonical_stream(lines)
    misses: dict[int, int] = {}
    if arr.shape[0] == 0:
        return misses
    n_sets = cfg.n_sets
    assoc = cfg.assoc
    part, counts = _partition(arr, n_sets)
    # Immediate same-line repeats (stack distance 0) always hit at any
    # associativity >= 1 and never change a stack — strip them exactly as
    # the histogram kernels do.
    part, counts, _ = _strip_d0(part, counts)
    stream = part.tolist()
    starts, ends, _ = _set_bounds(counts)
    for pos, end in zip(starts.tolist(), ends.tolist()):
        stack: list[int] = []
        index = stack.index
        insert = stack.insert
        pop = stack.pop
        for line in stream[pos:end]:
            try:
                d = index(line)
            except ValueError:
                misses[line] = misses.get(line, 0) + 1  # cold miss
                insert(0, line)
                continue
            insert(0, pop(d))
            if d >= assoc:
                misses[line] = misses.get(line, 0) + 1
    return misses


def sweep_stats(
    lines: np.ndarray, n_sets: int, assocs, *, method: str = "sweep"
) -> dict[int, CacheStats]:
    """Stats for a whole associativity family from one kernel pass."""
    hist = stack_distance_histogram(lines, n_sets, method=method)
    return {int(a): hist.stats(int(a)) for a in assocs}
