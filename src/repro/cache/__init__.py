"""Cache simulators: solo set-associative LRU, shared SMT co-run, prefetch,
and the exact stack-distance kernel answering all associativities at once."""

from .config import PAPER_L1I, CacheConfig
from .fastsim import (
    DistanceHistogram,
    simulate_fast,
    stack_distance_histogram,
    sweep_stats,
)
from .hierarchy import (
    PAPER_HIERARCHY,
    HierarchyConfig,
    HierarchyStats,
    simulate_hierarchy,
    simulate_hierarchy_shared,
)
from .policies import POLICIES, FIFOSet, LRUSet, RandomSet, TreePLRUSet, make_policy
from .setassoc import CacheState, simulate, simulate_policy, warm_cache
from .shared import SharedCacheStats, simulate_shared
from .stats import CacheStats

__all__ = [
    "DistanceHistogram",
    "FIFOSet",
    "HierarchyConfig",
    "HierarchyStats",
    "PAPER_HIERARCHY",
    "LRUSet",
    "PAPER_L1I",
    "POLICIES",
    "CacheConfig",
    "CacheState",
    "CacheStats",
    "RandomSet",
    "SharedCacheStats",
    "TreePLRUSet",
    "make_policy",
    "simulate",
    "simulate_fast",
    "simulate_hierarchy",
    "simulate_hierarchy_shared",
    "simulate_policy",
    "simulate_shared",
    "stack_distance_histogram",
    "sweep_stats",
    "warm_cache",
]
