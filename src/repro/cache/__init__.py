"""Cache simulators: solo set-associative LRU, shared SMT co-run, prefetch."""

from .config import PAPER_L1I, CacheConfig
from .hierarchy import (
    PAPER_HIERARCHY,
    HierarchyConfig,
    HierarchyStats,
    simulate_hierarchy,
    simulate_hierarchy_shared,
)
from .policies import POLICIES, FIFOSet, LRUSet, RandomSet, TreePLRUSet, make_policy
from .setassoc import CacheState, simulate, simulate_policy, warm_cache
from .shared import simulate_shared
from .stats import CacheStats

__all__ = [
    "FIFOSet",
    "HierarchyConfig",
    "HierarchyStats",
    "PAPER_HIERARCHY",
    "LRUSet",
    "PAPER_L1I",
    "POLICIES",
    "CacheConfig",
    "CacheState",
    "CacheStats",
    "RandomSet",
    "TreePLRUSet",
    "make_policy",
    "simulate",
    "simulate_hierarchy",
    "simulate_hierarchy_shared",
    "simulate_policy",
    "simulate_shared",
    "warm_cache",
]
