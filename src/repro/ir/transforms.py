"""Layout transformations: function reordering and inter-procedural
basic-block reordering.

The IR is layout-independent, so a "transformation" here does what the
paper's LLVM passes do at the binary level: it fixes a new linear order of
code and materializes the consequences (entry stubs, explicit fall-through
jumps, new addresses).  The output is a :class:`LayoutResult` bundling the
:class:`~repro.ir.codegen.AddressMap` with provenance, ready for the fetch
model and the cache simulator.

Three steps of BB reordering (paper Sec. II-E):

1. *pre-processing* — entry stubs + explicit jumps (modeled in
   :func:`repro.ir.codegen.layout_blocks` via ``entry_stubs=True``);
2. *reordering* — the permutation itself, produced by a locality model;
3. *post-processing* — sanity checks (module re-validation, permutation
   completeness, address-map overlap check) and residual-jump elimination
   (a jump to the lexically next block is never emitted — also handled by
   the adjacency test in the size model).

The sanity checks are the layout-integrity audits from
:mod:`repro.lint.integrity` — the same functions behind the linter's L006
rule — so a broken order raises :class:`~repro.lint.integrity.LayoutError`
(a :class:`ValueError`) carrying the identical diagnostics ``python -m
repro.lint`` would report.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

from ..lint.integrity import (
    audit_address_map,
    audit_function_order,
    audit_gid_order,
    raise_on_errors,
)
from .codegen import AddressMap, function_order_gids, layout_blocks, original_gid_order
from .module import Module
from .validate import validate_module

__all__ = [
    "LayoutKind",
    "LayoutResult",
    "baseline_layout",
    "reorder_functions",
    "reorder_basic_blocks",
]


class LayoutKind(str, Enum):
    """How a layout was produced."""

    ORIGINAL = "original"
    FUNCTION = "function-reorder"
    BASIC_BLOCK = "bb-reorder"


@dataclass
class LayoutResult:
    """A concrete, costed code layout."""

    kind: LayoutKind
    address_map: AddressMap
    #: the order fed to the transform (function names or gids)
    order: list
    #: free-form provenance, e.g. "affinity(w=2..20)"
    note: str = ""

    @property
    def added_jumps(self) -> int:
        return self.address_map.added_jumps

    @property
    def total_bytes(self) -> int:
        return self.address_map.total_bytes


def baseline_layout(module: Module) -> LayoutResult:
    """The original (declaration-order) layout.

    Fall-through jumps are costed with the same rules as optimized layouts
    so comparisons are apples-to-apples.
    """
    gids = original_gid_order(module)
    amap = layout_blocks(module, gids, entry_stubs=False)
    return LayoutResult(LayoutKind.ORIGINAL, amap, gids, note="declaration order")


def reorder_functions(module: Module, func_order: list[str], note: str = "") -> LayoutResult:
    """Apply whole-program function reordering.

    Blocks within each function keep their declaration order; no space is
    inserted between functions (paper Sec. II-D).  Functions absent from
    ``func_order`` are appended in declaration order.
    """
    validate_module(module)
    raise_on_errors(audit_function_order(module, func_order))
    gids = function_order_gids(module, func_order)
    amap = layout_blocks(module, gids, entry_stubs=False)
    raise_on_errors(audit_address_map(module, amap))
    return LayoutResult(LayoutKind.FUNCTION, amap, list(func_order), note=note)


def reorder_basic_blocks(module: Module, gid_order: list[int], note: str = "") -> LayoutResult:
    """Apply inter-procedural basic-block reordering.

    ``gid_order`` may be a partial order (e.g. only the hot blocks a pruned
    trace mentions); remaining blocks are appended in declaration order,
    mirroring how cold code is left in place by the paper's pass.
    """
    validate_module(module)
    raise_on_errors(audit_gid_order(module, gid_order))
    seen = set(gid_order)
    full = list(gid_order)
    for gid in original_gid_order(module):
        if gid not in seen:
            full.append(gid)

    amap = layout_blocks(module, full, entry_stubs=True)
    raise_on_errors(audit_address_map(module, amap))
    return LayoutResult(LayoutKind.BASIC_BLOCK, amap, full, note=note)
