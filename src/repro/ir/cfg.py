"""Control-flow graph queries over the IR.

Provides successor maps at two granularities:

* **intra-procedural** block successors (branch/jump/loop edges plus the
  return-to edge of a call), used by the layout transforms to decide which
  fall-through edges an order breaks;
* **inter-procedural** edges (call edges to callee entries and an
  over-approximated return edge set), used for whole-program reachability.

These are static structures.  The paper's models are purely
profile-driven — dynamic frequencies come from traces — but the CFG is
also the substrate of the profile-*free* channel: :mod:`repro.staticlint`
estimates block frequencies from branch heuristics over these edges and
certifies the estimates against the trace-driven simulator.
"""

from __future__ import annotations

from collections import deque
from typing import Iterable

from .module import BasicBlock, Module

__all__ = [
    "intra_successors",
    "block_successor_gids",
    "reachable_blocks",
    "call_graph",
    "static_call_sites",
]


def intra_successors(module: Module, block: BasicBlock) -> list[BasicBlock]:
    """Intra-procedural successor blocks of ``block``.

    For a call terminator this is the return-to block (the edge that exists
    in the function's own layout); the callee entry is an inter-procedural
    edge reported by :func:`call_graph`.
    """
    func = module.function(block.func)
    return [func.block(name) for name in block.terminator.local_targets()]


def block_successor_gids(module: Module) -> dict[int, list[int]]:
    """gid -> list of successor gids, including call edges to callee entries."""
    succs: dict[int, list[int]] = {}
    for block in module.iter_blocks():
        out = [b.gid for b in intra_successors(module, block)]
        callee = block.terminator.callee()
        if callee is not None:
            out.append(module.function(callee).entry.gid)
        succs[block.gid] = out
    return succs


def reachable_blocks(module: Module) -> set[int]:
    """gids reachable from the entry function's entry block.

    Return edges are over-approximated: reaching any block of a function
    whose terminator is a return makes all recorded call return-to blocks
    reachable only through their own call sites, which the successor map
    already encodes (call -> return_to is a direct edge), so a plain BFS
    over :func:`block_successor_gids` suffices.
    """
    succs = block_successor_gids(module)
    start = module.function(module.entry).entry.gid
    seen = {start}
    queue: deque[int] = deque([start])
    while queue:
        gid = queue.popleft()
        for nxt in succs[gid]:
            if nxt not in seen:
                seen.add(nxt)
                queue.append(nxt)
    return seen


def call_graph(module: Module) -> dict[str, set[str]]:
    """caller function name -> set of callee function names."""
    graph: dict[str, set[str]] = {f.name: set() for f in module.functions}
    for block in module.iter_blocks():
        callee = block.terminator.callee()
        if callee is not None:
            graph[block.func].add(callee)
    return graph


def static_call_sites(module: Module, func_name: str) -> list[BasicBlock]:
    """All blocks (anywhere in the module) that call ``func_name``."""
    return [
        block
        for block in module.iter_blocks()
        if block.terminator.callee() == func_name
    ]


def topological_functions(module: Module) -> list[str]:
    """Functions in a bottom-up call-graph order (callees before callers).

    Cycles (recursion) are broken arbitrarily but deterministically.  Useful
    for presentation and for deterministic tie-breaking in layout emission.
    """
    graph = call_graph(module)
    order: list[str] = []
    temp: set[str] = set()
    done: set[str] = set()

    def visit(name: str) -> None:
        if name in done or name in temp:
            return
        temp.add(name)
        for callee in sorted(graph[name]):
            visit(callee)
        temp.discard(name)
        done.add(name)
        order.append(name)

    for func in module.functions:
        visit(func.name)
    return order


def iter_fallthrough_pairs(module: Module) -> Iterable[tuple[int, int]]:
    """(gid, fallthrough-gid) pairs for every block with a fall-through path."""
    for block in module.iter_blocks():
        ft = block.terminator.fallthrough_target()
        if ft is not None:
            yield block.gid, module.function(block.func).block(ft).gid
