"""Core intermediate-representation types.

The paper's compiler substrate is LLVM; its locality models and layout
transforms only interact with three properties of the program:

1. the *identity* of code blocks (functions and basic blocks),
2. their *dynamic execution order* (the instrumented trace), and
3. their *encoded size* (how many cache lines a block occupies).

This module defines a miniature IR that exposes exactly those surfaces.  A
:class:`Module` owns :class:`Function` objects; each function owns
:class:`BasicBlock` objects.  A basic block is ``n_instr`` straight-line
instructions followed by one :class:`Terminator`.  Terminators carry enough
behavioural parameters (branch probabilities, loop trip counts, callees) for
the deterministic interpreter in :mod:`repro.engine` to produce realistic,
seeded instruction traces.

Block identity
--------------
Every block has a *local* name unique within its function and a *global id*
(:attr:`BasicBlock.gid`) assigned when the module is sealed.  Global ids are
dense integers, used throughout the trace and locality machinery as compact
block handles (the paper's "mapping file" that assigns each block an index).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Optional, Sequence

__all__ = [
    "INSTRUCTION_BYTES",
    "Terminator",
    "Jump",
    "Branch",
    "Switch",
    "Call",
    "Return",
    "Exit",
    "LoopBranch",
    "BasicBlock",
    "DataAccess",
    "Function",
    "Module",
    "BlockRef",
]

#: Encoded size of one instruction, in bytes.  A fixed-width 4-byte encoding
#: (RISC-like) keeps the size model trivial to reason about; the cache
#: simulator only cares about byte extents.
INSTRUCTION_BYTES = 4


class Terminator:
    """Base class for block terminators.

    A terminator is the single control-transfer instruction ending a basic
    block.  It contributes one instruction to the block's encoded size
    (callers construct blocks with ``n_instr`` counting the terminator).
    """

    #: Local block names this terminator may transfer control to within the
    #: same function.  Populated by subclasses.
    def local_targets(self) -> tuple[str, ...]:
        return ()

    #: Name of the callee function, if this terminator is a call.
    def callee(self) -> Optional[str]:
        return None

    def fallthrough_target(self) -> Optional[str]:
        """Local block that execution continues at when no branch is taken.

        This is the block that benefits from being laid out adjacently: if
        the layout places it immediately after this block, no explicit jump
        instruction is required.  ``None`` means the terminator never falls
        through (e.g. :class:`Return`, :class:`Exit`, :class:`Switch`).
        """
        return None


@dataclass(frozen=True)
class Jump(Terminator):
    """Unconditional transfer to ``target`` in the same function."""

    target: str

    def local_targets(self) -> tuple[str, ...]:
        return (self.target,)

    def fallthrough_target(self) -> Optional[str]:
        return self.target


@dataclass(frozen=True)
class Branch(Terminator):
    """Two-way conditional branch.

    ``taken_prob`` is the probability of transferring to ``then``; the
    interpreter draws from its seeded RNG.  An optional phase modulation
    (``phase_prob``, ``phase_period``) switches the probability to
    ``phase_prob`` during odd phases of length ``phase_period`` dynamic
    blocks, producing the program-phase behaviour that makes test/ref input
    profiles differ.
    """

    then: str
    orelse: str
    taken_prob: float = 0.5
    phase_prob: Optional[float] = None
    phase_period: int = 0

    def local_targets(self) -> tuple[str, ...]:
        return (self.then, self.orelse)

    def fallthrough_target(self) -> Optional[str]:
        # Convention: the not-taken (else) side is the fall-through path,
        # as emitted by every mainstream compiler.
        return self.orelse


@dataclass(frozen=True)
class Switch(Terminator):
    """Multi-way transfer; ``weights`` give the relative target frequencies."""

    targets: tuple[str, ...]
    weights: tuple[float, ...]

    def __post_init__(self) -> None:
        if len(self.targets) != len(self.weights):
            raise ValueError("switch targets and weights must align")
        if len(self.targets) == 0:
            raise ValueError("switch needs at least one target")

    def local_targets(self) -> tuple[str, ...]:
        return self.targets


@dataclass(frozen=True)
class Call(Terminator):
    """Call ``func``; execution resumes at ``return_to`` in this function."""

    func: str
    return_to: str

    def local_targets(self) -> tuple[str, ...]:
        return (self.return_to,)

    def callee(self) -> Optional[str]:
        return self.func

    def fallthrough_target(self) -> Optional[str]:
        return self.return_to


@dataclass(frozen=True)
class Return(Terminator):
    """Return control to the caller."""


@dataclass(frozen=True)
class Exit(Terminator):
    """Terminate the program."""


@dataclass(frozen=True)
class LoopBranch(Terminator):
    """Counted back-edge.

    Executes the back edge to ``back`` exactly ``trips - 1`` times, then
    exits to ``exit_to`` and resets, so one *visit* to the enclosing loop
    runs the body ``trips`` times.  Counters are per dynamic loop entry
    (maintained by the interpreter), so nested and recursive uses behave
    naturally.
    """

    back: str
    exit_to: str
    trips: int

    def __post_init__(self) -> None:
        if self.trips < 1:
            raise ValueError("loop trip count must be >= 1")

    def local_targets(self) -> tuple[str, ...]:
        return (self.back, self.exit_to)

    def fallthrough_target(self) -> Optional[str]:
        return self.exit_to


@dataclass(frozen=True)
class DataAccess:
    """Data-side memory behaviour of one basic block (for Eq. 1 studies).

    Executing the block touches ``n_lines`` data cache lines per run,
    chosen by ``mode``:

    * ``"local"``  — round-robin over a small per-function region of
      ``region_lines`` lines (stack slots, hot locals: high reuse);
    * ``"stream"`` — a sequential walk through a ``region_lines``-line
      region, advancing each execution (array traversal: low reuse);
    * ``"shared"`` — a fixed set of hot global lines (very high reuse).

    Blocks without a :class:`DataAccess` issue no data references — the
    instruction-cache experiments are unaffected by this field.
    """

    mode: str
    n_lines: int = 1
    region_lines: int = 64

    def __post_init__(self) -> None:
        if self.mode not in ("local", "stream", "shared"):
            raise ValueError(f"unknown data access mode {self.mode!r}")
        if self.n_lines < 1 or self.region_lines < 1:
            raise ValueError("n_lines and region_lines must be positive")


@dataclass
class BasicBlock:
    """A straight-line run of ``n_instr`` instructions plus a terminator.

    ``n_instr`` counts the terminator, so the encoded size of the block in
    the *original* layout is ``n_instr * INSTRUCTION_BYTES``.  Layout
    transforms may add explicit jump instructions; those are recorded in the
    address map, not here (the IR stays layout-independent).
    """

    name: str
    n_instr: int
    terminator: Terminator
    #: optional data-side behaviour (loads/stores) of the block.
    data: Optional[DataAccess] = None
    #: Dense module-wide id; assigned by :meth:`Module.seal`.
    gid: int = field(default=-1, compare=False)
    #: Owning function name; assigned by :meth:`Module.seal`.
    func: str = field(default="", compare=False)

    def __post_init__(self) -> None:
        if self.n_instr < 1:
            raise ValueError("a basic block holds at least its terminator")

    @property
    def size_bytes(self) -> int:
        """Encoded size without layout-added jumps."""
        return self.n_instr * INSTRUCTION_BYTES

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"BasicBlock({self.func}:{self.name}, n={self.n_instr}, gid={self.gid})"


@dataclass(frozen=True)
class BlockRef:
    """A fully-qualified block reference ``function:block``."""

    func: str
    block: str

    def __str__(self) -> str:
        return f"{self.func}:{self.block}"


class Function:
    """An ordered collection of basic blocks; the first block is the entry."""

    def __init__(self, name: str, blocks: Sequence[BasicBlock]):
        if not blocks:
            raise ValueError(f"function {name!r} has no blocks")
        names = [b.name for b in blocks]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate block names in function {name!r}")
        self.name = name
        self.blocks: list[BasicBlock] = list(blocks)
        self._by_name = {b.name: b for b in self.blocks}

    @property
    def entry(self) -> BasicBlock:
        return self.blocks[0]

    def block(self, name: str) -> BasicBlock:
        return self._by_name[name]

    def __contains__(self, name: str) -> bool:
        return name in self._by_name

    def __iter__(self) -> Iterator[BasicBlock]:
        return iter(self.blocks)

    def __len__(self) -> int:
        return len(self.blocks)

    @property
    def n_instr(self) -> int:
        """Total static instruction count of the function."""
        return sum(b.n_instr for b in self.blocks)

    @property
    def size_bytes(self) -> int:
        """Encoded size without layout-added jumps."""
        return self.n_instr * INSTRUCTION_BYTES

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Function({self.name}, blocks={len(self.blocks)})"


class Module:
    """A whole program: functions plus a designated entry function.

    After construction a module must be :meth:`sealed <seal>` before use;
    sealing assigns dense global block ids in declaration order (the paper's
    index mapping) and freezes the function list.
    """

    def __init__(self, name: str, functions: Sequence[Function], entry: str = "main"):
        fnames = [f.name for f in functions]
        if len(set(fnames)) != len(fnames):
            raise ValueError("duplicate function names in module")
        if entry not in fnames:
            raise ValueError(f"entry function {entry!r} not defined")
        self.name = name
        self.functions: list[Function] = list(functions)
        self.entry = entry
        self._by_name = {f.name: f for f in self.functions}
        self._sealed = False
        self._blocks_by_gid: list[BasicBlock] = []

    # -- construction -----------------------------------------------------

    def seal(self) -> "Module":
        """Assign global block ids and mark the module immutable.

        Idempotent; returns ``self`` for chaining.
        """
        if self._sealed:
            return self
        gid = 0
        self._blocks_by_gid = []
        for func in self.functions:
            for block in func.blocks:
                block.gid = gid
                block.func = func.name
                self._blocks_by_gid.append(block)
                gid += 1
        self._sealed = True
        return self

    @property
    def sealed(self) -> bool:
        return self._sealed

    def _require_sealed(self) -> None:
        if not self._sealed:
            raise RuntimeError("module must be sealed before use")

    # -- lookups ----------------------------------------------------------

    def function(self, name: str) -> Function:
        return self._by_name[name]

    def __contains__(self, name: str) -> bool:
        return name in self._by_name

    def block_by_gid(self, gid: int) -> BasicBlock:
        self._require_sealed()
        return self._blocks_by_gid[gid]

    def block(self, ref: BlockRef) -> BasicBlock:
        return self._by_name[ref.func].block(ref.block)

    def iter_blocks(self) -> Iterator[BasicBlock]:
        for func in self.functions:
            yield from func.blocks

    # -- metrics ----------------------------------------------------------

    @property
    def n_functions(self) -> int:
        return len(self.functions)

    @property
    def n_blocks(self) -> int:
        return sum(len(f) for f in self.functions)

    @property
    def n_instr(self) -> int:
        return sum(f.n_instr for f in self.functions)

    @property
    def size_bytes(self) -> int:
        """Static code size in the original layout, without added jumps."""
        return self.n_instr * INSTRUCTION_BYTES

    def block_sizes(self) -> list[int]:
        """Encoded byte size of every block, indexed by gid."""
        self._require_sealed()
        return [b.size_bytes for b in self._blocks_by_gid]

    def function_of_gid(self) -> list[str]:
        """Owning function name for every block, indexed by gid."""
        self._require_sealed()
        return [b.func for b in self._blocks_by_gid]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Module({self.name}, functions={self.n_functions}, "
            f"blocks={self.n_blocks}, bytes={self.size_bytes})"
        )
