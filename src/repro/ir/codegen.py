"""Address assignment: turning a layout order into a code image.

The locality models output an *order* of code blocks; the cache only sees
*addresses*.  This module maps orders to byte addresses, reproducing the
paper's size model:

* each IR instruction encodes to 4 bytes (:data:`~repro.ir.module.INSTRUCTION_BYTES`);
* **function reordering** keeps each function's blocks contiguous in their
  declaration order and inserts no space between functions;
* **inter-procedural BB reordering** first pre-processes the program: every
  function gets a one-instruction entry stub (a jump to its entry block,
  wherever it lands), and every block whose fall-through successor is not
  laid out immediately after it gets one explicit jump appended.  These
  added instructions enlarge the code image, so the politeness *cost* of
  aggressive reordering is visible to the cache simulator, exactly as in a
  real binary.

The result is an :class:`AddressMap`: per-gid start addresses and encoded
sizes, plus bookkeeping about how many jumps the layout had to add.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .module import INSTRUCTION_BYTES, Module

__all__ = [
    "AddressMap",
    "layout_blocks",
    "place_blocks",
    "function_order_gids",
    "original_gid_order",
]


@dataclass
class AddressMap:
    """Byte placement of every block under one concrete layout.

    Attributes
    ----------
    order:
        gids in layout order (every block appears exactly once).
    starts, sizes:
        per-gid byte start address and encoded size (``int64`` arrays indexed
        by gid, *not* by layout position).
    added_jumps:
        number of explicit jump instructions the layout required (entry stubs
        plus broken fall-throughs).
    base:
        base address of the image.
    """

    order: list[int]
    starts: np.ndarray
    sizes: np.ndarray
    added_jumps: int
    base: int = 0

    @property
    def total_bytes(self) -> int:
        """Encoded code bytes (excluding any placement gaps)."""
        return int(self.sizes.sum())

    @property
    def end(self) -> int:
        """One past the last encoded byte (includes placement gaps)."""
        return int((self.starts + self.sizes).max()) if self.sizes.shape[0] else self.base

    @property
    def image_bytes(self) -> int:
        """Extent of the image including gaps (``end - base``)."""
        return self.end - self.base

    def span(self, gid: int) -> tuple[int, int]:
        """``(start, end)`` byte interval of block ``gid`` (end exclusive)."""
        start = int(self.starts[gid])
        return start, start + int(self.sizes[gid])

    def line_span(self, gid: int, line_bytes: int) -> tuple[int, int]:
        """``(first_line, last_line)`` cache-line indices touched by ``gid``."""
        start, end = self.span(gid)
        return start // line_bytes, (end - 1) // line_bytes

    def overlaps(self) -> bool:
        """True if any two blocks overlap (should never happen)."""
        idx = np.argsort(self.starts, kind="stable")
        starts = self.starts[idx]
        ends = starts + self.sizes[idx]
        return bool(np.any(starts[1:] < ends[:-1]))


def original_gid_order(module: Module) -> list[int]:
    """Declaration order of all blocks — the baseline ("original") layout."""
    return [b.gid for b in module.iter_blocks()]


def function_order_gids(module: Module, func_order: list[str]) -> list[int]:
    """Expand a function order into a gid order.

    Blocks inside each function keep their declaration order; functions not
    named in ``func_order`` are appended in declaration order (real linkers
    keep unmentioned sections in input order).
    """
    seen = set()
    order: list[int] = []
    for name in func_order:
        if name in seen:
            raise ValueError(f"function {name!r} appears twice in layout order")
        seen.add(name)
        order.extend(b.gid for b in module.function(name).blocks)
    for func in module.functions:
        if func.name not in seen:
            order.extend(b.gid for b in func.blocks)
    return order


def layout_blocks(
    module: Module,
    gid_order: list[int],
    *,
    entry_stubs: bool = False,
    base: int = 0,
) -> AddressMap:
    """Assign addresses to blocks laid out in ``gid_order``.

    Parameters
    ----------
    module:
        sealed module the order refers to.
    gid_order:
        permutation of all gids.
    entry_stubs:
        when True (inter-procedural BB reordering), each function's entry
        block is charged one extra jump instruction — the paper's
        pre-processing stub that redirects the function symbol to the
        relocated entry block.
    base:
        base byte address of the image.

    Fall-through accounting: for every block whose terminator falls through
    to a specific successor, if that successor is not placed immediately
    after the block, the block is charged one explicit jump instruction.
    This applies to *any* order, including the original one (a builder may
    declare blocks out of fall-through order), so baselines and optimized
    layouts are costed identically.
    """
    n = module.n_blocks
    if sorted(gid_order) != list(range(n)):
        raise ValueError("gid_order must be a permutation of all block gids")

    position = {gid: i for i, gid in enumerate(gid_order)}

    # Fall-through targets per gid.
    ft_target: dict[int, int] = {}
    for block in module.iter_blocks():
        ft = block.terminator.fallthrough_target()
        if ft is not None:
            ft_target[block.gid] = module.function(block.func).block(ft).gid

    sizes = np.zeros(n, dtype=np.int64)
    added = 0
    entry_gids = {f.entry.gid for f in module.functions} if entry_stubs else set()
    for block in module.iter_blocks():
        size = block.n_instr * INSTRUCTION_BYTES
        gid = block.gid
        if gid in entry_gids:
            size += INSTRUCTION_BYTES
            added += 1
        target = ft_target.get(gid)
        if target is not None and position[target] != position[gid] + 1:
            size += INSTRUCTION_BYTES
            added += 1
        sizes[gid] = size

    starts = np.zeros(n, dtype=np.int64)
    addr = base
    for gid in gid_order:
        starts[gid] = addr
        addr += int(sizes[gid])

    return AddressMap(order=list(gid_order), starts=starts, sizes=sizes, added_jumps=added, base=base)


def place_blocks(
    module: Module,
    starts_by_gid: dict[int, int],
    *,
    entry_stubs: bool = False,
) -> AddressMap:
    """Assign blocks to *explicit* byte addresses (gap-capable placement).

    Unlike :func:`layout_blocks`, which packs an order densely, this takes
    a concrete start address per gid — the interface placement-style
    optimizers (Gloy-Smith alignment, cache-line coloring) need, where
    padding between code is part of the design.  Addresses must leave every
    block disjoint; gaps are allowed and simply waste space.

    Fall-through jumps are charged whenever a block's fall-through
    successor does not start exactly at its end.
    """
    n = module.n_blocks
    if sorted(starts_by_gid) != list(range(n)):
        raise ValueError("starts_by_gid must cover every gid exactly once")

    ft_target: dict[int, int] = {}
    for block in module.iter_blocks():
        ft = block.terminator.fallthrough_target()
        if ft is not None:
            ft_target[block.gid] = module.function(block.func).block(ft).gid

    entry_gids = {f.entry.gid for f in module.functions} if entry_stubs else set()
    sizes = np.zeros(n, dtype=np.int64)
    added = 0
    # First pass sizes without fall-through knowledge of end addresses;
    # charging a fall-through jump changes a block's end, which could make
    # a previously-adjacent successor non-adjacent, so sizes are solved in
    # one deterministic pass: a block is charged unless its successor
    # starts exactly at start + base size (+ stub) — i.e. the placement
    # must have budgeted the jump explicitly if it wants adjacency with it.
    for block in module.iter_blocks():
        gid = block.gid
        size = block.n_instr * INSTRUCTION_BYTES
        if gid in entry_gids:
            size += INSTRUCTION_BYTES
            added += 1
        target = ft_target.get(gid)
        if target is not None and starts_by_gid[target] != starts_by_gid[gid] + size:
            size += INSTRUCTION_BYTES
            added += 1
        sizes[gid] = size

    starts = np.zeros(n, dtype=np.int64)
    for gid, start in starts_by_gid.items():
        if start < 0:
            raise ValueError(f"negative start address for gid {gid}")
        starts[gid] = start

    order = sorted(range(n), key=lambda g: int(starts[g]))
    amap = AddressMap(
        order=order, starts=starts, sizes=sizes, added_jumps=added, base=int(starts.min())
    )
    if amap.overlaps():
        raise ValueError("placement produces overlapping blocks")
    return amap
