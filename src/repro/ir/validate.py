"""IR verifier.

The paper's basic-block reordering pipeline ends with a post-processing step
"responsible for sanity check, residual code elimination and other cleanup
work".  This module is the sanity-check half: it validates structural
invariants of a module so that transforms can assert they produced a legal
program.

Checks
------
* function names are unique in the module and block names are unique
  within each function (constructors enforce this too, but a module can
  be mutated after construction — the verifier re-checks);
* every terminator's local targets name blocks in the same function;
* every call targets a defined function;
* the entry function exists and every function has an entry block;
* branch probabilities lie in ``[0, 1]`` and switch weights are
  non-negative with a positive sum;
* global ids are dense and consistent after sealing;
* (warning-level) unreachable blocks are reported, not rejected — real
  binaries keep cold unreachable code too.
"""

from __future__ import annotations

from .cfg import reachable_blocks
from .module import Branch, Module, Switch

__all__ = ["ValidationError", "validate_module"]


class ValidationError(Exception):
    """Raised when a module violates a structural invariant."""


def validate_module(module: Module) -> list[str]:
    """Validate ``module``; raise :class:`ValidationError` on hard errors.

    Returns a list of warning strings (e.g. unreachable blocks) so callers
    can surface them without failing.
    """
    if not module.sealed:
        raise ValidationError("module is not sealed")

    warnings: list[str] = []
    fname_list = [f.name for f in module.functions]
    fnames = set(fname_list)
    if len(fnames) != len(fname_list):
        dupes = sorted({n for n in fname_list if fname_list.count(n) > 1})
        raise ValidationError(f"duplicate function name(s) in module: {', '.join(dupes)}")

    for func in module.functions:
        block_names = [b.name for b in func.blocks]
        if len(set(block_names)) != len(block_names):
            dupes = sorted({n for n in block_names if block_names.count(n) > 1})
            raise ValidationError(
                f"duplicate block name(s) in function {func.name!r}: {', '.join(dupes)}"
            )
        for block in func.blocks:
            term = block.terminator
            for target in term.local_targets():
                if target not in func:
                    raise ValidationError(
                        f"{func.name}:{block.name} targets unknown block {target!r}"
                    )
            callee = term.callee()
            if callee is not None and callee not in fnames:
                raise ValidationError(
                    f"{func.name}:{block.name} calls unknown function {callee!r}"
                )
            if isinstance(term, Branch):
                probs = [term.taken_prob]
                if term.phase_prob is not None:
                    probs.append(term.phase_prob)
                    if term.phase_period <= 0:
                        raise ValidationError(
                            f"{func.name}:{block.name} has phase_prob but "
                            f"phase_period={term.phase_period}"
                        )
                for p in probs:
                    if not 0.0 <= p <= 1.0:
                        raise ValidationError(
                            f"{func.name}:{block.name} branch probability {p} out of range"
                        )
            if isinstance(term, Switch):
                if any(w < 0 for w in term.weights) or sum(term.weights) <= 0:
                    raise ValidationError(
                        f"{func.name}:{block.name} switch weights must be "
                        f"non-negative with positive sum"
                    )

    # Dense, consistent global ids.
    gids = [b.gid for b in module.iter_blocks()]
    if sorted(gids) != list(range(module.n_blocks)):
        raise ValidationError("global block ids are not dense")
    for block in module.iter_blocks():
        if module.block_by_gid(block.gid) is not block:
            raise ValidationError(f"gid table inconsistent at {block.gid}")

    # Reachability (warnings only).
    reachable = reachable_blocks(module)
    for block in module.iter_blocks():
        if block.gid not in reachable:
            warnings.append(f"unreachable block {block.func}:{block.name}")
    return warnings
