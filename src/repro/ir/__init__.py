"""Miniature compiler IR: the substrate the layout optimizers operate on.

See :mod:`repro.ir.module` for the type definitions and DESIGN.md Sec. 2 for
why this stands in for the paper's LLVM substrate.
"""

from .builder import FunctionBuilder, ModuleBuilder
from .codegen import AddressMap, function_order_gids, layout_blocks, original_gid_order
from .module import (
    INSTRUCTION_BYTES,
    BasicBlock,
    DataAccess,
    BlockRef,
    Branch,
    Call,
    Exit,
    Function,
    Jump,
    LoopBranch,
    Module,
    Return,
    Switch,
    Terminator,
)
from ..lint.integrity import LayoutError
from .transforms import (
    LayoutKind,
    LayoutResult,
    baseline_layout,
    reorder_basic_blocks,
    reorder_functions,
)
from .validate import ValidationError, validate_module

__all__ = [
    "INSTRUCTION_BYTES",
    "AddressMap",
    "BasicBlock",
    "BlockRef",
    "Branch",
    "Call",
    "DataAccess",
    "Exit",
    "Function",
    "FunctionBuilder",
    "Jump",
    "LayoutError",
    "LayoutKind",
    "LayoutResult",
    "LoopBranch",
    "Module",
    "ModuleBuilder",
    "Return",
    "Switch",
    "Terminator",
    "ValidationError",
    "baseline_layout",
    "function_order_gids",
    "layout_blocks",
    "original_gid_order",
    "reorder_basic_blocks",
    "reorder_functions",
    "validate_module",
]
