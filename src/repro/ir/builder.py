"""Fluent construction API for the miniature IR.

Writing :class:`~repro.ir.module.Module` literals by hand is verbose; the
builder keeps workload generators and tests readable::

    b = ModuleBuilder("demo")
    f = b.function("main")
    f.block("entry", 4).loop("body", "exit", trips=100)
    f.block("body", 8).call("helper", return_to="exit_check")
    ...
    module = b.build()

Each ``block(...)`` call returns a :class:`TerminatorSetter` whose methods
(``jump``, ``branch``, ``switch``, ``call``, ``ret``, ``exit``, ``loop``)
attach the terminator.  ``build()`` validates (via :mod:`repro.ir.validate`)
and seals the module.
"""

from __future__ import annotations

from typing import Optional

from .module import (
    BasicBlock,
    Branch,
    Call,
    DataAccess,
    Exit,
    Function,
    Jump,
    LoopBranch,
    Module,
    Return,
    Switch,
    Terminator,
)

__all__ = ["ModuleBuilder", "FunctionBuilder", "TerminatorSetter"]


class TerminatorSetter:
    """Attaches exactly one terminator to a pending block."""

    def __init__(
        self,
        owner: "FunctionBuilder",
        name: str,
        n_instr: int,
        data: Optional["DataAccess"] = None,
    ):
        self._owner = owner
        self._name = name
        self._n_instr = n_instr
        self._data = data
        self._done = False

    def _finish(self, term: Terminator) -> "FunctionBuilder":
        if self._done:
            raise RuntimeError(f"block {self._name!r} already terminated")
        self._done = True
        self._owner._add(BasicBlock(self._name, self._n_instr, term, data=self._data))
        return self._owner

    def jump(self, target: str) -> "FunctionBuilder":
        return self._finish(Jump(target))

    def branch(
        self,
        then: str,
        orelse: str,
        taken_prob: float = 0.5,
        phase_prob: Optional[float] = None,
        phase_period: int = 0,
    ) -> "FunctionBuilder":
        return self._finish(Branch(then, orelse, taken_prob, phase_prob, phase_period))

    def switch(self, targets: list[str], weights: list[float]) -> "FunctionBuilder":
        return self._finish(Switch(tuple(targets), tuple(weights)))

    def call(self, func: str, return_to: str) -> "FunctionBuilder":
        return self._finish(Call(func, return_to))

    def ret(self) -> "FunctionBuilder":
        return self._finish(Return())

    def exit(self) -> "FunctionBuilder":
        return self._finish(Exit())

    def loop(self, back: str, exit_to: str, trips: int) -> "FunctionBuilder":
        return self._finish(LoopBranch(back, exit_to, trips))


class FunctionBuilder:
    """Accumulates blocks for one function, in declaration order."""

    def __init__(self, module: "ModuleBuilder", name: str):
        self._module = module
        self.name = name
        self._blocks: list[BasicBlock] = []
        self._pending: Optional[TerminatorSetter] = None

    def _add(self, block: BasicBlock) -> None:
        self._blocks.append(block)
        self._pending = None

    def block(
        self, name: str, n_instr: int, data: Optional[DataAccess] = None
    ) -> TerminatorSetter:
        """Declare a block; the returned setter must attach a terminator.

        ``data`` optionally attaches the block's data-side behaviour
        (:class:`~repro.ir.module.DataAccess`) for unified-cache studies.
        """
        if self._pending is not None:
            raise RuntimeError(
                f"block declared while {self._blocks and self._blocks[-1].name} pending"
            )
        setter = TerminatorSetter(self, name, n_instr, data)
        self._pending = setter
        return setter

    def straightline(self, name: str, n_instr: int, then: str) -> "FunctionBuilder":
        """Shorthand for a block that unconditionally jumps to ``then``."""
        return self.block(name, n_instr).jump(then)

    def _finish(self) -> Function:
        if self._pending is not None:
            raise RuntimeError(f"unterminated block in function {self.name!r}")
        return Function(self.name, self._blocks)


class ModuleBuilder:
    """Accumulates functions; ``build()`` validates and seals."""

    def __init__(self, name: str, entry: str = "main"):
        self.name = name
        self.entry = entry
        self._functions: list[FunctionBuilder] = []

    def function(self, name: str) -> FunctionBuilder:
        fb = FunctionBuilder(self, name)
        self._functions.append(fb)
        return fb

    def build(self, validate: bool = True) -> Module:
        module = Module(self.name, [fb._finish() for fb in self._functions], self.entry)
        module.seal()
        if validate:
            from .validate import validate_module

            validate_module(module)
        return module
