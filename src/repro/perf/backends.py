"""Kernel backend registry: ``scalar`` / ``numpy`` / ``compiled`` tiers.

Every hot analysis kernel — the stack-distance histogram
(:mod:`repro.cache.fastsim`), the affinity coverage sweep, and the TRG
build (:mod:`repro.core.fastanalysis`) — exists at three speed tiers
that are **bit-identical** by contract (pinned by the cross-backend
parity matrix in ``tests/perf/test_backends.py``; ``==``-level gates,
no tolerances):

``scalar``
    The in-tree oracles, unchanged: the textbook per-access Fenwick
    histogram construction, :class:`repro.core.affinity.AffinityAnalysis`,
    and :func:`repro.core.trg.build_trg`.  Slow, obviously correct, and
    the reference every faster tier is gated against.
``numpy``
    The batch-vectorized paths: the offline dominance-count sweep for
    histograms (no per-access Python loop at all) and the
    record-pass + NumPy-join analysis kernels.  Always available
    (NumPy is a hard dependency).
``compiled``
    The same kernels with their innermost event passes JIT'd by numba
    (:mod:`repro.perf._numba_kernels`).  Auto-detected at import;
    declared as the ``[compiled]`` optional extra in ``pyproject.toml``
    and silently absent when numba is not installed.

Resolution order is ``compiled -> numpy -> scalar``: :func:`resolve`
with no name returns the fastest available tier.  Callers override per
run via ``Lab(kernel_backend=...)``, ``OptimizerConfig.kernel_backend``,
or the ``--kernel-backend`` CLI flag.  Worker processes resolve their
*own* backend from the requested name with ``strict=False`` — a parent
that resolved ``compiled`` can hand work to a worker without numba and
the worker degrades to ``numpy`` with identical results (that is the
point of the bit-identical contract).

Backend choice deliberately does **not** enter
:class:`repro.perf.memo.SimMemo` keys: results are identical by
contract, so a memo populated by one tier is a cache hit for every
other (pinned by the cross-backend memo-hit test).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

import numpy as np

from ..cache.fastsim import DistanceHistogram, stack_distance_histogram
from ..core.fastanalysis import (
    AffinityCoverage,
    affinity_coverage,
    build_trg_fast,
    coverage_from_analysis,
)
from . import _numba_kernels

__all__ = [
    "KernelBackend",
    "RESOLUTION_ORDER",
    "available_backends",
    "default_backend",
    "resolve_backend",
]

#: preference order of the tiers; resolution picks the first available.
RESOLUTION_ORDER = ("compiled", "numpy", "scalar")


@dataclass(frozen=True)
class KernelBackend:
    """One speed tier of the three analysis kernels.

    The three callables share their signatures across tiers and return
    the same types (:class:`DistanceHistogram`, :class:`AffinityCoverage`,
    :class:`~repro.core.trg.TRG`), so call sites thread a backend
    without caring which tier they got.
    """

    name: str
    histogram: Callable[[np.ndarray, int], DistanceHistogram]
    affinity: Callable[..., AffinityCoverage]
    trg: Callable[..., object]


def _scalar_histogram(lines: np.ndarray, n_sets: int) -> DistanceHistogram:
    return stack_distance_histogram(lines, n_sets, method="bit")


def _scalar_affinity(
    trace: np.ndarray, w_max: int = 20, time_horizon: Optional[int] = None
) -> AffinityCoverage:
    from ..core.affinity import AffinityAnalysis

    analysis = AffinityAnalysis(trace, w_max=w_max, time_horizon=time_horizon)
    return coverage_from_analysis(analysis, time_horizon)


def _scalar_trg(trace: np.ndarray, window_blocks: Optional[int] = None):
    from ..core.trg import build_trg

    return build_trg(trace, window_blocks)


def _numpy_histogram(lines: np.ndarray, n_sets: int) -> DistanceHistogram:
    return stack_distance_histogram(lines, n_sets, method="sweep")


def _compiled_histogram(lines: np.ndarray, n_sets: int) -> DistanceHistogram:
    from ..cache import fastsim

    if n_sets < 1 or n_sets & (n_sets - 1):
        raise ValueError("n_sets must be a positive power of two")
    arr = fastsim._canonical_stream(lines)
    n = arr.shape[0]
    if n == 0:
        return DistanceHistogram(n_sets, 0, 0, np.zeros(0, dtype=np.int64))
    part, counts = fastsim._partition(arr, n_sets)
    cold, hist = _numba_kernels.histogram_compiled(part, counts)
    return DistanceHistogram(n_sets=n_sets, accesses=n, cold=cold, hist=hist)


def _compiled_affinity(
    trace: np.ndarray, w_max: int = 20, time_horizon: Optional[int] = None
) -> AffinityCoverage:
    return affinity_coverage(
        trace,
        w_max,
        time_horizon,
        records_fn=_numba_kernels.recency_records_compiled,
    )


def _compiled_trg(trace: np.ndarray, window_blocks: Optional[int] = None):
    return build_trg_fast(
        trace, window_blocks, records_fn=_numba_kernels.trg_records_compiled
    )


_SCALAR = KernelBackend(
    name="scalar",
    histogram=_scalar_histogram,
    affinity=_scalar_affinity,
    trg=_scalar_trg,
)

_NUMPY = KernelBackend(
    name="numpy",
    histogram=_numpy_histogram,
    affinity=affinity_coverage,
    trg=build_trg_fast,
)

_COMPILED = KernelBackend(
    name="compiled",
    histogram=_compiled_histogram,
    affinity=_compiled_affinity,
    trg=_compiled_trg,
)

_REGISTRY: dict[str, KernelBackend] = {"scalar": _SCALAR, "numpy": _NUMPY}
if _numba_kernels.HAVE_NUMBA:  # pragma: no cover - needs the [compiled] extra
    _REGISTRY["compiled"] = _COMPILED


def available_backends() -> tuple[str, ...]:
    """Registered tier names, fastest first."""
    return tuple(n for n in RESOLUTION_ORDER if n in _REGISTRY)


def default_backend() -> str:
    """The tier :func:`resolve` picks when no name is requested."""
    return available_backends()[0]


def resolve_backend(
    name: Optional[str] = None, *, strict: bool = True
) -> KernelBackend:
    """Resolve a requested tier name to a :class:`KernelBackend`.

    ``None`` means "fastest available" (``compiled`` when numba is
    importable, else ``numpy``).  A known-but-unavailable name —
    ``compiled`` without numba — raises :class:`ValueError` under
    ``strict=True``; with ``strict=False`` it degrades down
    :data:`RESOLUTION_ORDER` instead, which is how worker processes
    inherit a parent's request without sharing its environment.  An
    unknown name always raises.
    """
    if name is None:
        return _REGISTRY[default_backend()]
    if name not in RESOLUTION_ORDER:
        raise ValueError(
            f"unknown kernel backend {name!r}; known: {', '.join(RESOLUTION_ORDER)}"
        )
    backend = _REGISTRY.get(name)
    if backend is not None:
        return backend
    if strict:
        raise ValueError(
            f"kernel backend {name!r} is not available in this environment "
            f"(install the [compiled] extra); available: "
            f"{', '.join(available_backends())}"
        )
    start = RESOLUTION_ORDER.index(name)
    for fallback in RESOLUTION_ORDER[start + 1 :]:
        if fallback in _REGISTRY:
            return _REGISTRY[fallback]
    raise ValueError(f"no kernel backend available for {name!r}")  # pragma: no cover
