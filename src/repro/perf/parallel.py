"""Process-pool execution of experiments and simulation cells.

Two fan-out layers, matching the structure of the evaluation:

* **experiment level** — :class:`ExperimentPool` runs whole experiment
  drivers in worker processes.  Each worker builds its own
  :class:`~repro.experiments.pipeline.Lab` from the parent lab's
  configuration (labs hold megabytes of memoized traces and are not
  shareable), executes the same per-experiment attempt loop as the
  serial runner, and ships back a picklable payload: the
  :class:`~repro.experiments.report.ExperimentResult`, the typed error
  as a dict, retry notes, and the lab's stage timings/counters.  The
  parent consumes payloads **in submission order**, so output, journal,
  and outcomes are identical to a serial run (modulo wall-clock fields).

* **cell level** — :func:`simulate_cells` fans independent
  (line stream, cache config, prefetch) simulation cells across a pool;
  :meth:`Lab.precompute_solo <repro.experiments.pipeline.Lab.precompute_solo>`
  and the :class:`~repro.compiler.driver.Driver` evaluation stage use it
  for intra-experiment parallelism.  :func:`histogram_cells` is the
  kernel-path counterpart: independent (line stream, n_sets) cells, each
  producing a :class:`~repro.cache.fastsim.DistanceHistogram` that
  answers every associativity of the geometry family at once.

Cell traffic is zero-copy when a :class:`~repro.perf.store.TraceStore`
is attached: a cell's stream argument may be a
:class:`~repro.perf.store.StoreRef` descriptor instead of the pickled
array, and workers resolve it against the store with an ``np.memmap``
read.  :class:`CellPool` keeps the workers alive across fan-out calls
(one persistent pool per Lab/Driver instead of a throwaway
``ProcessPoolExecutor`` per map) and submits cells in batches to
amortize IPC.

Every simulation here is deterministic (seeded noise, content-addressed
inputs), so distributing work across processes cannot change any result
— the parity tests in ``tests/perf/`` and the CI benchmark smoke job
enforce exactly that.
"""

from __future__ import annotations

import multiprocessing
from concurrent.futures import Future, ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from typing import Any, Callable, Optional

import numpy as np

from ..cache.config import CacheConfig
from ..cache.fastsim import DistanceHistogram
from ..cache.stats import CacheStats
from ..robust.errors import (
    ArtifactError,
    ProfileError,
    ReproError,
    SimulationError,
    WorkerCrashError,
    WorkerHangError,
)
from .store import StoreRef, TraceStore

__all__ = [
    "CellPool",
    "ExperimentPool",
    "analysis_cells",
    "curve_cells",
    "histogram_cells",
    "rebuild_error",
    "simulate_cells",
]

#: the per-process Lab of an experiment worker (set by the initializer).
_WORKER_LAB = None

#: the per-process TraceStore cell kernels resolve StoreRefs against.
#: Set by the cell-worker initializer; in the parent it is (re)pointed at
#: the pool's store on every map, so the serial degradation path resolves
#: the exact same refs.
_CELL_STORE: Optional[TraceStore] = None

#: the per-process KernelBackend cell kernels run on.  Set by the
#: cell-worker initializer from the *requested* tier name with
#: ``strict=False`` — each worker resolves against its own environment,
#: so a ``compiled`` parent mixed with a numba-less worker degrades to
#: ``numpy`` with bit-identical results.  ``None`` means "not resolved
#: yet"; :func:`_cell_backend` then picks the fastest available tier.
_CELL_BACKEND = None


def _cell_backend():
    """This process's resolved kernel backend (fastest tier by default)."""
    global _CELL_BACKEND
    if _CELL_BACKEND is None:
        from .backends import resolve_backend

        _CELL_BACKEND = resolve_backend(None)
    return _CELL_BACKEND


def _mp_context():
    """Prefer fork (fast, POSIX) and fall back to spawn portably."""
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context("fork" if "fork" in methods else "spawn")


# -- experiment-level fan-out -------------------------------------------------

def _init_experiment_worker(
    lab_config: dict,
    memo_dir: Optional[str],
    breaker_config: Optional[dict] = None,
    store_dir: Optional[str] = None,
) -> None:
    from ..experiments.pipeline import Lab
    from .memo import SimMemo

    global _WORKER_LAB
    lab_config = dict(lab_config)
    lab_config["jobs"] = 1  # no nested pools inside a worker
    if memo_dir is not None:
        if breaker_config:
            from ..robust.supervisor import CircuitBreaker

            lab_config["memo"] = SimMemo(
                memo_dir, breaker=CircuitBreaker(**breaker_config)
            )
        else:
            lab_config["memo"] = SimMemo(memo_dir)
    if store_dir is not None:
        lab_config["store"] = TraceStore(store_dir)
    _WORKER_LAB = Lab(**lab_config)


def _experiment_task(
    exp_id: str, retries: int, inject_fault: Optional[str], policy=None
) -> dict:
    """Run one experiment in the worker; return a picklable payload."""
    from ..experiments.runner import attempt_experiment

    lab = _WORKER_LAB
    assert lab is not None, "worker pool used without initializer"
    # A worker lab lives across tasks; ship per-task *deltas* so the
    # parent can sum payloads without double counting.
    counters_before = dict(lab.counters)
    memo_before = lab.memo.counters() if lab.memo is not None else None
    store_before = lab.store.counters() if lab.store is not None else None
    outcome, notes = attempt_experiment(
        lab, exp_id, retries=retries, inject_fault=inject_fault, policy=policy
    )
    error = outcome.error
    memo_delta = None
    if lab.memo is not None:
        after = lab.memo.counters()
        memo_delta = {
            k: after[k] - (memo_before or {}).get(k, 0)
            for k in after
            if k != "hit_rate"
        }
    store_delta = None
    if lab.store is not None:
        after = lab.store.counters()
        store_delta = {
            k: after[k] - (store_before or {}).get(k, 0) for k in after
        }
    return {
        "exp_id": outcome.exp_id,
        "status": outcome.status,
        "elapsed_s": outcome.elapsed_s,
        "attempts": outcome.attempts,
        "result": outcome.result,
        "error": None
        if error is None
        else {
            "type": type(error).__name__,
            "dict": error.to_dict(),
            "rendered": str(error),
        },
        "notes": notes,
        "timings": outcome.timings,
        "counters": {
            k: lab.counters[k] - counters_before.get(k, 0) for k in lab.counters
        },
        "memo": memo_delta,
        "store": store_delta,
    }


_ERROR_TYPES: dict[str, type] = {
    cls.__name__: cls
    for cls in (
        ReproError,
        ProfileError,
        SimulationError,
        ArtifactError,
        WorkerCrashError,
        WorkerHangError,
    )
}


def rebuild_error(payload: dict) -> ReproError:
    """Reconstruct a worker's typed error in the parent process.

    The subclass and machine-readable context survive; the original
    ``cause`` exception does not cross the process boundary, so its
    rendered form is preserved verbatim via the exception message.
    """
    cls = _ERROR_TYPES.get(payload.get("type", ""), SimulationError)
    raw = dict(payload.get("dict") or {})
    raw.pop("type", None)
    message = raw.pop("message", "experiment failed")
    cause_repr = raw.pop("cause", None)
    err = cls(message, **raw)
    if cause_repr is not None:
        err.context.setdefault("cause", cause_repr)
    # Preserve the worker-side rendering exactly (parity with serial output).
    err.args = (payload.get("rendered", str(err)),)
    return err


class ExperimentPool:
    """A pool of experiment workers, each owning a private Lab.

    ``breaker_config`` (kwargs for
    :class:`~repro.robust.supervisor.CircuitBreaker`) guards each
    worker's memo disk tier, and ``store_dir`` attaches each worker to
    the shared :class:`~repro.perf.store.TraceStore` — both thread
    through the initializer exactly as :class:`SupervisedPool` does.
    """

    def __init__(
        self,
        jobs: int,
        lab_config: dict,
        *,
        memo_dir: Optional[str] = None,
        breaker_config: Optional[dict] = None,
        store_dir: Optional[str] = None,
    ):
        if jobs < 1:
            raise ValueError("jobs must be >= 1")
        self._executor = ProcessPoolExecutor(
            max_workers=jobs,
            mp_context=_mp_context(),
            initializer=_init_experiment_worker,
            initargs=(lab_config, memo_dir, breaker_config, store_dir),
        )

    def submit(
        self, exp_id: str, *, retries: int = 0, inject_fault: Optional[str] = None
    ) -> Future:
        return self._executor.submit(_experiment_task, exp_id, retries, inject_fault)

    def shutdown(self, *, cancel: bool = False) -> None:
        self._executor.shutdown(wait=not cancel, cancel_futures=cancel)

    def __enter__(self) -> "ExperimentPool":
        return self

    def __exit__(self, *exc) -> None:
        # Queued-but-unstarted work is always abandoned on exit: either
        # every future was consumed (cancel is a no-op) or the suite
        # aborted early and the leftovers must not burn CPU.
        self.shutdown(cancel=True)


# -- cell-level fan-out -------------------------------------------------------

def _init_cell_worker(
    store_dir: Optional[str], backend_name: Optional[str] = None
) -> None:
    """Cell-worker initializer: attach to the trace store and resolve
    this process's kernel backend from the requested tier name."""
    from .backends import resolve_backend

    global _CELL_STORE, _CELL_BACKEND
    _CELL_STORE = TraceStore(store_dir) if store_dir is not None else None
    _CELL_BACKEND = resolve_backend(backend_name, strict=False)


def _resolve_stream(trace) -> np.ndarray:
    """A cell's stream argument: a pickled array, or a StoreRef resolved
    against the attached store with a zero-copy memmap read."""
    if isinstance(trace, StoreRef):
        store = _CELL_STORE
        if store is None:
            raise SimulationError(
                f"cell carries store ref {trace.key[:12]}… but this process "
                "has no trace store attached",
                stage="simulate",
                defect="no trace store",
            )
        try:
            return store.resolve(trace)
        except KeyError:
            raise SimulationError(
                f"trace store entry {trace.key[:12]}… is missing or corrupt",
                stage="simulate",
                defect="store entry lost",
            ) from None
    return np.asarray(trace)


def _run_batch(fn: Callable[[Any], Any], cells: list) -> list:
    """Worker body of one batched dispatch (amortizes per-task IPC)."""
    return [fn(c) for c in cells]


class CellPool:
    """A persistent pool of cell-kernel workers, reused across fan-outs.

    The throwaway-pool model paid process startup (and, via ``fork``,
    page-table duplication) on *every* ``simulate_cells`` /
    ``histogram_cells`` / ``analysis_cells`` call.  A ``CellPool`` is
    owned by its Lab/Driver, spawns workers on first use, keeps them
    alive across calls (``reuses`` counts the amortized fan-outs), and
    submits cells in batches of roughly ``2 * jobs`` per map so the IPC
    cost scales with worker count, not cell count.

    Fault model: a pool broken mid-map (a worker OOM-killed or
    segfaulted) loses only the batches that had not completed — finished
    futures keep their results, and only the lost cells are recomputed
    serially in the parent (``recomputed`` counts them).  The dead
    executor is discarded and the next map spawns a fresh one.  Cell
    kernels are pure, so none of this can change a result.
    """

    def __init__(
        self,
        jobs: int,
        *,
        store: Optional[TraceStore] = None,
        kernel_backend: Optional[str] = None,
    ):
        from .backends import resolve_backend

        if jobs < 1:
            raise ValueError("jobs must be >= 1")
        self.jobs = jobs
        self._store = store
        #: requested tier name (ships to worker initializers verbatim).
        self._backend_name = kernel_backend
        #: parent-side resolution, for the serial/recompute paths.
        self._backend = resolve_backend(kernel_backend, strict=False)
        self._executor: Optional[ProcessPoolExecutor] = None
        self.maps = 0
        self.reuses = 0
        self.batches = 0
        self.broken_pools = 0
        self.recomputed = 0

    @property
    def store(self) -> Optional[TraceStore]:
        return self._store

    def _ensure_executor(self) -> ProcessPoolExecutor:
        if self._executor is None:
            store_dir = str(self._store.root) if self._store is not None else None
            self._executor = ProcessPoolExecutor(
                max_workers=self.jobs,
                mp_context=_mp_context(),
                initializer=_init_cell_worker,
                initargs=(store_dir, self._backend_name),
            )
        else:
            self.reuses += 1
        return self._executor

    def map(self, fn: Callable[[Any], Any], cells: list) -> list:
        """Map ``fn`` over ``cells``; results positionally aligned and
        bit-identical to ``[fn(c) for c in cells]``."""
        # Point the parent-side resolver at our store and backend so the
        # serial paths below handle cells exactly like workers do.
        global _CELL_STORE, _CELL_BACKEND
        if self._store is not None:
            _CELL_STORE = self._store
        _CELL_BACKEND = self._backend
        self.maps += 1
        n = len(cells)
        if n == 0:
            return []
        if self.jobs <= 1 or n == 1:
            return [fn(c) for c in cells]
        executor = self._ensure_executor()
        per_batch = max(1, -(-n // (self.jobs * 2)))
        results: list = [None] * n
        done = [False] * n
        broken = False
        futures: list[tuple[int, Future]] = []
        try:
            for start in range(0, n, per_batch):
                futures.append(
                    (
                        start,
                        executor.submit(_run_batch, fn, cells[start:start + per_batch]),
                    )
                )
                self.batches += 1
        except BrokenProcessPool:
            broken = True
        for start, fut in futures:
            try:
                batch_out = fut.result()
            except BrokenProcessPool:
                broken = True
                continue
            for j, value in enumerate(batch_out):
                results[start + j] = value
                done[start + j] = True
        if broken:
            self.broken_pools += 1
            self.shutdown()
        for i, cell in enumerate(cells):
            if not done[i]:
                results[i] = fn(cell)
                self.recomputed += 1
        return results

    def shutdown(self) -> None:
        """Release the workers (the pool respawns them on next use)."""
        if self._executor is not None:
            self._executor.shutdown(wait=False, cancel_futures=True)
            self._executor = None

    def counters(self) -> dict[str, int]:
        return {
            "maps": self.maps,
            "reuses": self.reuses,
            "batches": self.batches,
            "broken_pools": self.broken_pools,
            "recomputed": self.recomputed,
        }

    def __enter__(self) -> "CellPool":
        return self

    def __exit__(self, *exc) -> None:
        self.shutdown()


def _pool_map(fn: Callable[[Any], Any], cells: list, jobs: int) -> list:
    """Map ``fn`` over ``cells`` in a transient process pool.

    Cell kernels are pure and deterministic, so a pool that dies mid-map
    (a worker OOM-killed or segfaulted raises
    :class:`~concurrent.futures.process.BrokenProcessPool`) loses no
    state.  Cells are submitted as individual futures and consumed
    incrementally: results completed before the pool broke are kept, and
    only the lost tail is recomputed serially in the parent.  Slower,
    never wrong — and never wasteful.
    """
    results: list = [None] * len(cells)
    done = [False] * len(cells)
    with ProcessPoolExecutor(
        max_workers=min(jobs, len(cells)), mp_context=_mp_context()
    ) as pool:
        futures: list[Future] = []
        try:
            for cell in cells:
                futures.append(pool.submit(fn, cell))
        except BrokenProcessPool:
            pass  # remaining cells fall through to the serial tail.
        for i, fut in enumerate(futures):
            try:
                results[i] = fut.result()
                done[i] = True
            except BrokenProcessPool:
                continue
    for i, cell in enumerate(cells):
        if not done[i]:
            results[i] = fn(cell)
    return results


def _map_cells(
    fn: Callable[[Any], Any],
    cells: list,
    jobs: int,
    pool: Optional[CellPool],
) -> list:
    """Route one fan-out through the persistent pool when one is given."""
    if pool is not None:
        return pool.map(fn, cells)
    if jobs <= 1 or len(cells) <= 1:
        return [fn(c) for c in cells]
    return _pool_map(fn, cells, jobs)


def _simulate_cell(cell: tuple) -> tuple[int, int, int, int]:
    from ..cache.setassoc import simulate

    lines, cfg, prefetch = cell
    stats = simulate(_resolve_stream(lines), cfg, prefetch=prefetch)
    return (stats.accesses, stats.misses, stats.prefetches, stats.prefetch_hits)


def simulate_cells(
    cells: list[tuple],
    *,
    jobs: int = 1,
    pool: Optional[CellPool] = None,
) -> list[CacheStats]:
    """Simulate independent (lines, cfg, prefetch) cells, possibly in parallel.

    ``lines`` may be an array or a :class:`~repro.perf.store.StoreRef`.
    Results are positionally aligned with ``cells`` and bit-identical to
    serial :func:`repro.cache.setassoc.simulate` calls — the cells share
    no state, so execution order cannot matter.  With ``jobs <= 1`` (or a
    single cell) and no ``pool``, no workers are spawned.
    """
    raw = _map_cells(_simulate_cell, cells, jobs, pool)
    return [
        CacheStats(accesses=a, misses=m, prefetches=p, prefetch_hits=h)
        for (a, m, p, h) in raw
    ]


def _analysis_cell(cell: tuple) -> dict:
    from ..core.fastanalysis import trg_to_payload

    backend = _cell_backend()
    kind = cell[0]
    if kind == "affinity":
        _, trace, w_max, time_horizon = cell
        return backend.affinity(
            _resolve_stream(trace), w_max=w_max, time_horizon=time_horizon
        ).to_dict()
    if kind == "trg":
        _, trace, window_blocks = cell
        return trg_to_payload(
            backend.trg(_resolve_stream(trace), window_blocks),
            window_blocks,
        )
    raise ValueError(f"unknown analysis cell kind {kind!r}")


def analysis_cells(
    cells: list[tuple],
    *,
    jobs: int = 1,
    pool: Optional[CellPool] = None,
) -> list[dict]:
    """Compute independent locality-model analysis cells, possibly in
    parallel.

    Each cell is ``("affinity", trace, w_max, time_horizon)`` or
    ``("trg", trace, window_blocks)`` — the shape produced by
    :func:`repro.core.optimizers.analysis_cell`, with ``trace`` either
    the array or its :class:`~repro.perf.store.StoreRef`.  Results are
    the artifacts' JSON payloads (picklable, and exactly what
    :meth:`repro.perf.memo.SimMemo.put_analysis` stores), positionally
    aligned with ``cells`` and identical to serial kernel runs — the
    kernels are deterministic, so fan-out cannot change any layout.
    """
    if pool is None and (jobs <= 1 or len(cells) <= 1):
        return [_analysis_cell(c) for c in cells]
    return _map_cells(_analysis_cell, cells, jobs, pool)


def _histogram_cell(cell: tuple) -> dict:
    lines, n_sets = cell
    return _cell_backend().histogram(_resolve_stream(lines), n_sets).to_dict()


def _curve_cell(cell: tuple) -> dict:
    from ..locality.footprint import footprint_curve

    (lines,) = cell
    return footprint_curve(_resolve_stream(lines)).to_dict()


def curve_cells(
    cells: list[tuple],
    *,
    jobs: int = 1,
    pool: Optional[CellPool] = None,
) -> list["FootprintCurve"]:
    """Compute independent all-window footprint curves, possibly in parallel.

    Each cell is ``(lines,)`` with ``lines`` the stream or its
    :class:`~repro.perf.store.StoreRef`.  Curves cross the process
    boundary as their dict form — JSON-exact floats, so a fanned-out
    curve is bit-identical to a serial
    :func:`repro.locality.footprint.footprint_curve` call (the fleet
    composition parity gate depends on it).
    """
    from ..locality.footprint import FootprintCurve

    raw = _map_cells(_curve_cell, cells, jobs, pool)
    return [FootprintCurve.from_dict(r) for r in raw]


def histogram_cells(
    cells: list[tuple],
    *,
    jobs: int = 1,
    pool: Optional[CellPool] = None,
) -> list[DistanceHistogram]:
    """Compute independent (lines, n_sets) stack-distance histograms.

    The kernel-path analogue of :func:`simulate_cells`: results are
    positionally aligned with ``cells`` and identical to serial
    :func:`repro.cache.fastsim.stack_distance_histogram` calls.
    Histograms cross the process boundary as their dict form (plain ints,
    cheap relative to the streams — which, with a store attached, do not
    cross at all).
    """
    raw = _map_cells(_histogram_cell, cells, jobs, pool)
    return [DistanceHistogram.from_dict(r) for r in raw]
