"""Process-pool execution of experiments and simulation cells.

Two fan-out layers, matching the structure of the evaluation:

* **experiment level** — :class:`ExperimentPool` runs whole experiment
  drivers in worker processes.  Each worker builds its own
  :class:`~repro.experiments.pipeline.Lab` from the parent lab's
  configuration (labs hold megabytes of memoized traces and are not
  shareable), executes the same per-experiment attempt loop as the
  serial runner, and ships back a picklable payload: the
  :class:`~repro.experiments.report.ExperimentResult`, the typed error
  as a dict, retry notes, and the lab's stage timings/counters.  The
  parent consumes payloads **in submission order**, so output, journal,
  and outcomes are identical to a serial run (modulo wall-clock fields).

* **cell level** — :func:`simulate_cells` fans independent
  (line stream, cache config, prefetch) simulation cells across a pool;
  :meth:`Lab.precompute_solo <repro.experiments.pipeline.Lab.precompute_solo>`
  and the :class:`~repro.compiler.driver.Driver` evaluation stage use it
  for intra-experiment parallelism.  :func:`histogram_cells` is the
  kernel-path counterpart: independent (line stream, n_sets) cells, each
  producing a :class:`~repro.cache.fastsim.DistanceHistogram` that
  answers every associativity of the geometry family at once.

Every simulation here is deterministic (seeded noise, content-addressed
inputs), so distributing work across processes cannot change any result
— the parity tests in ``tests/perf/`` and the CI benchmark smoke job
enforce exactly that.
"""

from __future__ import annotations

import multiprocessing
from concurrent.futures import Future, ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from typing import Any, Callable, Optional

import numpy as np

from ..cache.config import CacheConfig
from ..cache.fastsim import DistanceHistogram
from ..cache.stats import CacheStats
from ..robust.errors import (
    ArtifactError,
    ProfileError,
    ReproError,
    SimulationError,
    WorkerCrashError,
    WorkerHangError,
)

__all__ = [
    "ExperimentPool",
    "analysis_cells",
    "histogram_cells",
    "rebuild_error",
    "simulate_cells",
]

#: the per-process Lab of an experiment worker (set by the initializer).
_WORKER_LAB = None


def _mp_context():
    """Prefer fork (fast, POSIX) and fall back to spawn portably."""
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context("fork" if "fork" in methods else "spawn")


# -- experiment-level fan-out -------------------------------------------------

def _init_experiment_worker(
    lab_config: dict,
    memo_dir: Optional[str],
    breaker_config: Optional[dict] = None,
) -> None:
    from ..experiments.pipeline import Lab
    from .memo import SimMemo

    global _WORKER_LAB
    lab_config = dict(lab_config)
    lab_config["jobs"] = 1  # no nested pools inside a worker
    if memo_dir is not None:
        if breaker_config:
            from ..robust.supervisor import CircuitBreaker

            lab_config["memo"] = SimMemo(
                memo_dir, breaker=CircuitBreaker(**breaker_config)
            )
        else:
            lab_config["memo"] = SimMemo(memo_dir)
    _WORKER_LAB = Lab(**lab_config)


def _experiment_task(
    exp_id: str, retries: int, inject_fault: Optional[str], policy=None
) -> dict:
    """Run one experiment in the worker; return a picklable payload."""
    from ..experiments.runner import attempt_experiment

    lab = _WORKER_LAB
    assert lab is not None, "worker pool used without initializer"
    # A worker lab lives across tasks; ship per-task *deltas* so the
    # parent can sum payloads without double counting.
    counters_before = dict(lab.counters)
    memo_before = lab.memo.counters() if lab.memo is not None else None
    outcome, notes = attempt_experiment(
        lab, exp_id, retries=retries, inject_fault=inject_fault, policy=policy
    )
    error = outcome.error
    memo_delta = None
    if lab.memo is not None:
        after = lab.memo.counters()
        memo_delta = {
            k: after[k] - (memo_before or {}).get(k, 0)
            for k in after
            if k != "hit_rate"
        }
    return {
        "exp_id": outcome.exp_id,
        "status": outcome.status,
        "elapsed_s": outcome.elapsed_s,
        "attempts": outcome.attempts,
        "result": outcome.result,
        "error": None
        if error is None
        else {
            "type": type(error).__name__,
            "dict": error.to_dict(),
            "rendered": str(error),
        },
        "notes": notes,
        "timings": outcome.timings,
        "counters": {
            k: lab.counters[k] - counters_before.get(k, 0) for k in lab.counters
        },
        "memo": memo_delta,
    }


_ERROR_TYPES: dict[str, type] = {
    cls.__name__: cls
    for cls in (
        ReproError,
        ProfileError,
        SimulationError,
        ArtifactError,
        WorkerCrashError,
        WorkerHangError,
    )
}


def rebuild_error(payload: dict) -> ReproError:
    """Reconstruct a worker's typed error in the parent process.

    The subclass and machine-readable context survive; the original
    ``cause`` exception does not cross the process boundary, so its
    rendered form is preserved verbatim via the exception message.
    """
    cls = _ERROR_TYPES.get(payload.get("type", ""), SimulationError)
    raw = dict(payload.get("dict") or {})
    raw.pop("type", None)
    message = raw.pop("message", "experiment failed")
    cause_repr = raw.pop("cause", None)
    err = cls(message, **raw)
    if cause_repr is not None:
        err.context.setdefault("cause", cause_repr)
    # Preserve the worker-side rendering exactly (parity with serial output).
    err.args = (payload.get("rendered", str(err)),)
    return err


class ExperimentPool:
    """A pool of experiment workers, each owning a private Lab."""

    def __init__(
        self,
        jobs: int,
        lab_config: dict,
        *,
        memo_dir: Optional[str] = None,
    ):
        if jobs < 1:
            raise ValueError("jobs must be >= 1")
        self._executor = ProcessPoolExecutor(
            max_workers=jobs,
            mp_context=_mp_context(),
            initializer=_init_experiment_worker,
            initargs=(lab_config, memo_dir),
        )

    def submit(
        self, exp_id: str, *, retries: int = 0, inject_fault: Optional[str] = None
    ) -> Future:
        return self._executor.submit(_experiment_task, exp_id, retries, inject_fault)

    def shutdown(self, *, cancel: bool = False) -> None:
        self._executor.shutdown(wait=not cancel, cancel_futures=cancel)

    def __enter__(self) -> "ExperimentPool":
        return self

    def __exit__(self, *exc) -> None:
        # Queued-but-unstarted work is always abandoned on exit: either
        # every future was consumed (cancel is a no-op) or the suite
        # aborted early and the leftovers must not burn CPU.
        self.shutdown(cancel=True)


# -- cell-level fan-out -------------------------------------------------------

def _pool_map(fn: Callable[[Any], Any], cells: list, jobs: int) -> list:
    """Map ``fn`` over ``cells`` in a process pool, degrading to serial.

    Cell kernels are pure and deterministic, so a pool that dies mid-map
    (a worker OOM-killed or segfaulted raises
    :class:`~concurrent.futures.process.BrokenProcessPool`) loses no
    state — the whole map is simply recomputed serially in the parent.
    Slower, never wrong.
    """
    try:
        with ProcessPoolExecutor(
            max_workers=min(jobs, len(cells)), mp_context=_mp_context()
        ) as pool:
            return list(pool.map(fn, cells))
    except BrokenProcessPool:
        return [fn(c) for c in cells]


def _simulate_cell(cell: tuple) -> tuple[int, int, int, int]:
    from ..cache.setassoc import simulate

    lines, cfg, prefetch = cell
    stats = simulate(lines, cfg, prefetch=prefetch)
    return (stats.accesses, stats.misses, stats.prefetches, stats.prefetch_hits)


def simulate_cells(
    cells: list[tuple[np.ndarray, CacheConfig, bool]],
    *,
    jobs: int = 1,
) -> list[CacheStats]:
    """Simulate independent (lines, cfg, prefetch) cells, possibly in parallel.

    Results are positionally aligned with ``cells`` and bit-identical to
    serial :func:`repro.cache.setassoc.simulate` calls — the cells share
    no state, so execution order cannot matter.  With ``jobs <= 1`` (or a
    single cell) no pool is spawned.
    """
    if jobs <= 1 or len(cells) <= 1:
        raw = [_simulate_cell(c) for c in cells]
    else:
        raw = _pool_map(_simulate_cell, cells, jobs)
    return [
        CacheStats(accesses=a, misses=m, prefetches=p, prefetch_hits=h)
        for (a, m, p, h) in raw
    ]


def _analysis_cell(cell: tuple) -> dict:
    from ..core.fastanalysis import affinity_coverage, build_trg_fast, trg_to_payload

    kind = cell[0]
    if kind == "affinity":
        _, trace, w_max, time_horizon = cell
        return affinity_coverage(
            trace, w_max=w_max, time_horizon=time_horizon
        ).to_dict()
    if kind == "trg":
        _, trace, window_blocks = cell
        return trg_to_payload(
            build_trg_fast(trace, window_blocks=window_blocks), window_blocks
        )
    raise ValueError(f"unknown analysis cell kind {kind!r}")


def analysis_cells(
    cells: list[tuple],
    *,
    jobs: int = 1,
) -> list[dict]:
    """Compute independent locality-model analysis cells, possibly in
    parallel.

    Each cell is ``("affinity", trace, w_max, time_horizon)`` or
    ``("trg", trace, window_blocks)`` — the shape produced by
    :func:`repro.core.optimizers.analysis_cell`.  Results are the
    artifacts' JSON payloads (picklable, and exactly what
    :meth:`repro.perf.memo.SimMemo.put_analysis` stores), positionally
    aligned with ``cells`` and identical to serial kernel runs — the
    kernels are deterministic, so fan-out cannot change any layout.
    """
    if jobs <= 1 or len(cells) <= 1:
        return [_analysis_cell(c) for c in cells]
    return _pool_map(_analysis_cell, cells, jobs)


def _histogram_cell(cell: tuple) -> dict:
    from ..cache.fastsim import stack_distance_histogram

    lines, n_sets = cell
    return stack_distance_histogram(lines, n_sets).to_dict()


def histogram_cells(
    cells: list[tuple[np.ndarray, int]],
    *,
    jobs: int = 1,
) -> list[DistanceHistogram]:
    """Compute independent (lines, n_sets) stack-distance histograms.

    The kernel-path analogue of :func:`simulate_cells`: results are
    positionally aligned with ``cells`` and identical to serial
    :func:`repro.cache.fastsim.stack_distance_histogram` calls.
    Histograms cross the process boundary as their dict form (plain ints,
    cheap relative to the streams already being pickled outward).
    """
    if jobs <= 1 or len(cells) <= 1:
        raw = [_histogram_cell(c) for c in cells]
    else:
        raw = _pool_map(_histogram_cell, cells, jobs)
    return [DistanceHistogram.from_dict(r) for r in raw]
