"""Numba-JIT'd kernel bodies for the ``compiled`` backend tier.

Each kernel here is the innermost event pass of one of the three
analysis kernels — the per-set Fenwick walk of the stack-distance
histogram, the bounded-MTF recency pass of the affinity sweep, and the
bounded-MTF conflict pass of the TRG build.  They are written in
strictly nopython-compatible style (flat arrays, index loops, no Python
objects) and decorated with ``numba.njit`` when numba is importable;
without numba the undecorated CPython versions remain importable and
correct, which is what lets the parity suite pin the *logic* of this
tier on every machine — the CI ``[compiled]`` job then proves the same
functions actually compile and win.

Everything around these passes — set partitioning, distance-0
stripping, the affinity join/aggregation, the TRG weight fold — is the
same NumPy code the ``numpy`` tier runs (see
:mod:`repro.cache.fastsim` and :mod:`repro.core.fastanalysis`), so the
tiers are structurally bit-identical by construction and differ only in
how the flat event buffers are produced.

``numba`` is an *optional* extra (``pip install .[compiled]``); this
module must import cleanly when it is absent.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

try:  # pragma: no cover - exercised only where numba is installed
    import numba as _numba
except ImportError:  # pragma: no cover - the baked-in CI/container default
    _numba = None

#: True when the compiled tier can actually JIT (numba importable).
HAVE_NUMBA = _numba is not None

__all__ = [
    "HAVE_NUMBA",
    "histogram_compiled",
    "recency_records_compiled",
    "trg_records_compiled",
]


def _maybe_njit(fn):
    """JIT when numba is present; plain CPython function otherwise."""
    if _numba is None:
        return fn
    return _numba.njit(cache=True)(fn)


@_maybe_njit
def _fenwick_hist_pass(gids, starts, ends, n_distinct):
    """Per-set Fenwick stack-distance pass over global compact line ids.

    ``gids`` is the d0-stripped partitioned stream compacted to dense
    ids; ``starts``/``ends`` bound each non-empty set.  One shared
    last-position table serves every set (a line maps to exactly one
    set, so ids never collide across sets).  Returns the cold count and
    an untrimmed distance histogram.
    """
    n = gids.shape[0]
    hist = np.zeros(n + 1, dtype=np.int64)
    last = np.zeros(n_distinct, dtype=np.int64)
    cold = 0
    for s in range(starts.shape[0]):
        pos = starts[s]
        cnt = ends[s] - pos
        tree = np.zeros(cnt + 1, dtype=np.int64)
        for i in range(1, cnt + 1):
            lid = gids[pos + i - 1]
            p = last[lid]
            if p:
                d = np.int64(0)
                j = i - 1
                while j:
                    d += tree[j]
                    j -= j & -j
                j = p
                while j:
                    d -= tree[j]
                    j -= j & -j
                hist[d] += 1
                j = p
                while j <= cnt:
                    tree[j] -= 1
                    j += j & -j
            else:
                cold += 1
            j = i
            while j <= cnt:
                tree[j] += 1
                j += j & -j
            last[lid] = i
    return cold, hist


@_maybe_njit
def _recency_pass(ids, n_syms, K, with_pos):
    """Bounded-MTF recency pass (compiled mirror of
    ``repro.core.fastanalysis._recency_records``).

    The kept stack lives in two flat arrays (ids + last-access indices,
    MRU first, at most K+1 entries); every per-access operation is an
    O(K) shift.  Emits the same flat int32 buffers as the CPython pass:
    partner ids, per-access record counts, and (when ``with_pos``) the
    partners' last-access indices.
    """
    n = ids.shape[0]
    cap = K + 1
    in_top = np.zeros(n_syms, dtype=np.uint8)
    kept = np.empty(cap + 1, dtype=np.int32)
    kpos = np.empty(cap + 1, dtype=np.int32)
    m = 0
    partners = np.empty(n * K if K > 0 else 0, dtype=np.int32)
    positions = np.empty(partners.shape[0] if with_pos else 0, dtype=np.int32)
    counts = np.empty(n, dtype=np.int32)
    w = 0
    for now in range(n):
        z = ids[now]
        if in_top[z]:
            i = 0
            while kept[i] != z:
                i += 1
            while i < m - 1:
                kept[i] = kept[i + 1]
                kpos[i] = kpos[i + 1]
                i += 1
            m -= 1
        else:
            in_top[z] = 1
        e = K if m > K else m
        if with_pos:
            for j in range(e):
                partners[w] = kept[j]
                positions[w] = kpos[j]
                w += 1
        else:
            for j in range(e):
                partners[w] = kept[j]
                w += 1
        counts[now] = e
        j = m
        while j > 0:
            kept[j] = kept[j - 1]
            kpos[j] = kpos[j - 1]
            j -= 1
        kept[0] = z
        kpos[0] = now
        m += 1
        if m > cap:
            m -= 1
            in_top[kept[m]] = 0
    if with_pos:
        return partners[:w], counts, positions[:w]
    return partners[:w], counts, positions


@_maybe_njit
def _trg_pass(ids, n_syms, window_blocks):
    """Bounded-MTF conflict pass (compiled mirror of
    ``repro.core.fastanalysis._trg_records``).

    ``window_blocks == 0`` means unbounded.  The conflict log ``e_y``
    grows by amortized doubling — its final size is the number of
    (reuse, interleaved-id) records, exactly what the CPython pass's
    ``array('i')`` buffers hold.
    """
    n = ids.shape[0]
    cap = n_syms if window_blocks == 0 else min(n_syms, window_blocks + 1)
    stack = np.empty(cap + 1, dtype=np.int32)
    in_stack = np.zeros(n_syms, dtype=np.uint8)
    m = 0
    e_x = np.empty(n, dtype=np.int32)
    e_cnt = np.empty(n, dtype=np.int32)
    cap_y = 1024
    e_y = np.empty(cap_y, dtype=np.int32)
    nx = 0
    wy = 0
    for t in range(n):
        x = ids[t]
        if in_stack[x]:
            d = 0
            while stack[d] != x:
                d += 1
            if d:
                if wy + d > cap_y:
                    while cap_y < wy + d:
                        cap_y *= 2
                    grown = np.empty(cap_y, dtype=np.int32)
                    grown[:wy] = e_y[:wy]
                    e_y = grown
                e_x[nx] = x
                e_cnt[nx] = d
                nx += 1
                for j in range(d):
                    e_y[wy] = stack[j]
                    wy += 1
                j = d
                while j > 0:
                    stack[j] = stack[j - 1]
                    j -= 1
                stack[0] = x
        else:
            in_stack[x] = 1
            j = m
            while j > 0:
                stack[j] = stack[j - 1]
                j -= 1
            stack[0] = x
            m += 1
            if window_blocks != 0 and m > window_blocks:
                m -= 1
                in_stack[stack[m]] = 0
    return e_x[:nx], e_cnt[:nx], e_y[:wy]


# -- backend-contract wrappers (plain Python; see repro.perf.backends) -------


def histogram_compiled(part: np.ndarray, counts: np.ndarray) -> tuple[int, np.ndarray]:
    """``repro.cache.fastsim`` method-style histogram construction."""
    from ..cache.fastsim import _set_bounds, _strip_d0, _trim

    part, counts, n_d0 = _strip_d0(part, counts)
    if part.shape[0] == 0:
        return 0, _trim([n_d0])
    gids = np.unique(part, return_inverse=True)[1]
    gids = np.ascontiguousarray(gids, dtype=np.int64)
    starts, ends, _ = _set_bounds(counts)
    cold, hist = _fenwick_hist_pass(
        gids,
        np.ascontiguousarray(starts, dtype=np.int64),
        np.ascontiguousarray(ends, dtype=np.int64),
        int(gids.max()) + 1,
    )
    hist[0] += n_d0
    return int(cold), _trim(hist)


def recency_records_compiled(
    inv: np.ndarray, n_syms: int, K: int, with_pos: bool
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """``records_fn`` for :func:`repro.core.fastanalysis.affinity_coverage`."""
    ids = np.ascontiguousarray(inv, dtype=np.int64)
    return _recency_pass(ids, n_syms, K, with_pos)


def trg_records_compiled(
    inv: np.ndarray, n_syms: int, window_blocks: Optional[int]
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """``records_fn`` for :func:`repro.core.fastanalysis.build_trg_fast`."""
    ids = np.ascontiguousarray(inv, dtype=np.int64)
    return _trg_pass(ids, n_syms, 0 if window_blocks is None else window_blocks)
