"""Timing telemetry for the experiment pipeline: ``BENCH_perf.json``.

:class:`Telemetry` aggregates the per-stage wall-clock seconds that
:class:`~repro.compiler.driver.Driver` and
:class:`~repro.experiments.pipeline.Lab` already collect, adds simulator
throughput (line accesses per second) and memo-cache counters, and
renders one machine-readable benchmark report.  The schema
(:data:`BENCH_SCHEMA`) is documented in ``docs/performance.md`` and
consumed by the CI benchmark smoke job.

All durations come from the monotonic clock (``time.perf_counter``);
only the single ``generated_at`` stamp is epoch time.
"""

from __future__ import annotations

import json
import time
from pathlib import Path
from typing import Any, Optional

from ..robust.atomic import atomic_write_text

__all__ = ["BENCH_SCHEMA", "COMPAT_SCHEMAS", "Telemetry", "compare_journal_outcomes"]

#: schema tag of BENCH_perf.json; bump on breaking layout changes.
#: v2: adds the "kernel" section (stack-distance kernel throughput) next
#: to the scalar "simulator" section.
#: v3: adds the "analysis" section (locality-model kernel throughput and
#: analysis-memo hit counters from the optimize stage).
#: v4: adds the "staticlint" section (profile-free analysis throughput
#: and certification counters; see repro.staticlint).
#: v5: adds the "resilience" section (supervised-pool fault accounting
#: and memo circuit-breaker state; see repro.robust.supervisor) and the
#: extended memo counters that ride along with it.
#: v6: adds the "store" section (zero-copy trace-store transport:
#: bytes shipped across process boundaries vs. bytes memmapped, store
#: hit/put counters, persistent cell-pool reuse; see repro.perf.store).
#: v7: adds the "fleet" section (footprint-curve composition: curve
#: passes vs. memo replays vs. the co-run matrix cells they answered;
#: see repro.fleet).
#: v8: adds the kernel backend tier (repro.perf.backends) — the
#: top-level "kernel_backend" field plus a "backend" entry inside the
#: "kernel" and "analysis" sections, so a report says which tier
#: (scalar/numpy/compiled) produced its accesses/s figures.
BENCH_SCHEMA = "repro.perf/bench.v8"

#: older schema tags show-bench and other readers still accept.
COMPAT_SCHEMAS = (
    "repro.perf/bench.v2",
    "repro.perf/bench.v3",
    "repro.perf/bench.v4",
    "repro.perf/bench.v5",
    "repro.perf/bench.v6",
    "repro.perf/bench.v7",
)

#: journal-entry fields that legitimately differ between two runs of the
#: same suite (wall-clock measurements); everything else must match.
TIMING_FIELDS = ("elapsed_s", "finished_at", "timings")


class Telemetry:
    """Aggregated timing/throughput counters for one suite run."""

    def __init__(
        self,
        *,
        jobs: int = 1,
        scale: float = 1.0,
        kernel_backend: Optional[str] = None,
    ):
        self.jobs = jobs
        self.scale = scale
        #: resolved kernel tier name (bench.v8); not summed across
        #: workers — every worker of a run resolves the same request.
        self.kernel_backend = kernel_backend
        #: per-stage wall seconds, summed across experiments and workers.
        self.stages: dict[str, float] = {}
        #: per-experiment outcome summaries, in completion order.
        self.experiments: dict[str, dict[str, Any]] = {}
        self.sim_accesses = 0
        self.sim_seconds = 0.0
        self.kernel_accesses = 0
        self.kernel_seconds = 0.0
        self.kernel_passes = 0
        self.kernel_cells = 0
        self.analysis_accesses = 0
        self.analysis_seconds = 0.0
        self.analysis_passes = 0
        self.analysis_cells = 0
        self.analysis_memo_hits = 0
        self.staticlint_diags = 0
        self.staticlint_seconds = 0.0
        self.staticlint_certified = 0
        self.memo: dict[str, float] = {}
        #: supervised-pool fault accounting + breaker state (bench.v5).
        self.resilience: dict[str, Any] = {}
        #: cell-dispatch transport accounting (bench.v6): what crossed
        #: the process boundary pickled vs. attached by memmap, plus the
        #: TraceStore's own counters and persistent-pool amortization.
        self.store_bytes_shipped = 0
        self.store_bytes_mapped = 0
        self.pool_fanouts = 0
        self.pool_reuses = 0
        self.store: dict[str, float] = {}
        #: footprint-curve composition accounting (bench.v7): fresh
        #: curve passes vs. memo replays, and the co-run matrix cells
        #: those curves answered (cells >> passes is the fleet gate).
        self.curve_passes = 0
        self.curve_seconds = 0.0
        self.curve_memo_hits = 0
        self.fleet_cells = 0
        self.fleet_seconds = 0.0
        self.wall_s = 0.0

    # -- accumulation ------------------------------------------------------

    def merge_stages(self, timings: dict[str, float]) -> None:
        for name, seconds in timings.items():
            self.stages[name] = self.stages.get(name, 0.0) + float(seconds)

    def merge_counters(self, counters: dict[str, float]) -> None:
        self.sim_accesses += int(counters.get("sim_accesses", 0))
        self.sim_seconds += float(counters.get("sim_seconds", 0.0))
        self.kernel_accesses += int(counters.get("kernel_accesses", 0))
        self.kernel_seconds += float(counters.get("kernel_seconds", 0.0))
        self.kernel_passes += int(counters.get("kernel_passes", 0))
        self.kernel_cells += int(counters.get("kernel_cells", 0))
        self.analysis_accesses += int(counters.get("analysis_accesses", 0))
        self.analysis_seconds += float(counters.get("analysis_seconds", 0.0))
        self.analysis_passes += int(counters.get("analysis_passes", 0))
        self.analysis_cells += int(counters.get("analysis_cells", 0))
        self.analysis_memo_hits += int(counters.get("analysis_memo_hits", 0))
        self.staticlint_diags += int(counters.get("staticlint_diags", 0))
        self.staticlint_seconds += float(counters.get("staticlint_seconds", 0.0))
        self.staticlint_certified += int(counters.get("staticlint_certified", 0))
        self.store_bytes_shipped += int(counters.get("store_bytes_shipped", 0))
        self.store_bytes_mapped += int(counters.get("store_bytes_mapped", 0))
        self.pool_fanouts += int(counters.get("pool_fanouts", 0))
        self.pool_reuses += int(counters.get("pool_reuses", 0))
        self.curve_passes += int(counters.get("curve_passes", 0))
        self.curve_seconds += float(counters.get("curve_seconds", 0.0))
        self.curve_memo_hits += int(counters.get("curve_memo_hits", 0))
        self.fleet_cells += int(counters.get("fleet_cells", 0))
        self.fleet_seconds += float(counters.get("fleet_seconds", 0.0))

    def merge_memo(self, counters: Optional[dict[str, float]]) -> None:
        """Sum memo counters from one lab/worker into the aggregate.

        Every numeric counter is summed — the exact key set is owned by
        :meth:`repro.perf.memo.SimMemo.counters` and has grown over time
        (breaker trips, lock waits, …); only the derived ``hit_rate`` is
        recomputed here instead of summed.
        """
        if not counters:
            return
        for field, value in counters.items():
            if field == "hit_rate" or isinstance(value, bool):
                continue
            if isinstance(value, (int, float)):
                self.memo[field] = self.memo.get(field, 0) + int(value)
        keyed = self.memo.get("hits", 0) + self.memo.get("misses", 0)
        self.memo["hit_rate"] = (
            round(self.memo.get("hits", 0) / keyed, 4) if keyed else 0.0
        )

    def merge_resilience(self, stats: Optional[dict[str, Any]]) -> None:
        """Fold supervisor/chaos fault accounting into the report.

        Numeric fields are summed, boolean fields are OR-ed (``partial``
        stays true if *any* contributing pool gave up early); everything
        else is last-writer-wins.  Note ``bool`` is checked before the
        numeric branch — it is an ``int`` subclass and must not be
        summed.
        """
        if not stats:
            return
        for field, value in stats.items():
            if isinstance(value, bool):
                self.resilience[field] = bool(self.resilience.get(field)) or value
            elif isinstance(value, (int, float)):
                self.resilience[field] = self.resilience.get(field, 0) + value
            else:
                self.resilience[field] = value

    def merge_store(self, counters: Optional[dict[str, float]]) -> None:
        """Sum TraceStore counters from one lab/worker into the aggregate.

        Same contract as :meth:`merge_memo`: the key set is owned by
        :meth:`repro.perf.store.TraceStore.counters` and every numeric
        counter is summed.
        """
        if not counters:
            return
        for field, value in counters.items():
            if isinstance(value, bool):
                continue
            if isinstance(value, (int, float)):
                self.store[field] = self.store.get(field, 0) + int(value)

    def record_experiment(
        self, exp_id: str, status: str, elapsed_s: float, attempts: int
    ) -> None:
        self.experiments[exp_id] = {
            "status": status,
            "elapsed_s": round(elapsed_s, 3),
            "attempts": attempts,
        }

    # -- rendering ---------------------------------------------------------

    @property
    def accesses_per_second(self) -> float:
        return self.sim_accesses / self.sim_seconds if self.sim_seconds > 0 else 0.0

    @property
    def kernel_accesses_per_second(self) -> float:
        if self.kernel_seconds <= 0:
            return 0.0
        return self.kernel_accesses / self.kernel_seconds

    @property
    def analysis_accesses_per_second(self) -> float:
        if self.analysis_seconds <= 0:
            return 0.0
        return self.analysis_accesses / self.analysis_seconds

    @property
    def staticlint_diags_per_second(self) -> float:
        if self.staticlint_seconds <= 0:
            return 0.0
        return self.staticlint_diags / self.staticlint_seconds

    def to_dict(self) -> dict[str, Any]:
        return {
            "schema": BENCH_SCHEMA,
            "generated_at": time.time(),
            "jobs": self.jobs,
            "scale": self.scale,
            "kernel_backend": self.kernel_backend,
            "wall_s": round(self.wall_s, 3),
            "experiments": self.experiments,
            "stages": {k: round(v, 4) for k, v in sorted(self.stages.items())},
            "simulator": {
                "accesses": self.sim_accesses,
                "seconds": round(self.sim_seconds, 4),
                "accesses_per_s": round(self.accesses_per_second, 1),
            },
            "kernel": {
                "backend": self.kernel_backend,
                "accesses": self.kernel_accesses,
                "seconds": round(self.kernel_seconds, 4),
                "accesses_per_s": round(self.kernel_accesses_per_second, 1),
                "passes": self.kernel_passes,
                "cells": self.kernel_cells,
                "cells_per_pass": round(
                    self.kernel_cells / self.kernel_passes, 2
                )
                if self.kernel_passes
                else 0.0,
            },
            "analysis": {
                "backend": self.kernel_backend,
                "accesses": self.analysis_accesses,
                "seconds": round(self.analysis_seconds, 4),
                "accesses_per_s": round(self.analysis_accesses_per_second, 1),
                "passes": self.analysis_passes,
                "cells": self.analysis_cells,
                "memo_hits": self.analysis_memo_hits,
            },
            "staticlint": {
                "diagnostics": self.staticlint_diags,
                "seconds": round(self.staticlint_seconds, 4),
                "diagnostics_per_s": round(self.staticlint_diags_per_second, 1),
                "certified": self.staticlint_certified,
            },
            "memo": self.memo or None,
            "resilience": self.resilience or None,
            "store": self._store_section(),
            "fleet": self._fleet_section(),
        }

    def _fleet_section(self) -> Optional[dict[str, Any]]:
        """The bench.v7 composition section, or None when no curves ran."""
        if not (self.curve_passes or self.curve_memo_hits or self.fleet_cells):
            return None
        curves = self.curve_passes + self.curve_memo_hits
        return {
            "cells": self.fleet_cells,
            "seconds": round(self.fleet_seconds, 4),
            "cells_per_s": round(self.fleet_cells / self.fleet_seconds, 1)
            if self.fleet_seconds > 0
            else 0.0,
            "curve_passes": self.curve_passes,
            "curve_memo_hits": self.curve_memo_hits,
            "curve_seconds": round(self.curve_seconds, 4),
            "cells_per_curve": round(self.fleet_cells / curves, 1) if curves else 0.0,
        }

    def _store_section(self) -> Optional[dict[str, Any]]:
        """The bench.v6 transport section, or None when nothing shipped."""
        if not (
            self.store_bytes_shipped
            or self.store_bytes_mapped
            or self.pool_fanouts
            or self.store
        ):
            return None
        section: dict[str, Any] = {
            "bytes_shipped": self.store_bytes_shipped,
            "bytes_mapped": self.store_bytes_mapped,
            "pool_fanouts": self.pool_fanouts,
            "pool_reuses": self.pool_reuses,
        }
        # The TraceStore's own counters nest under "backend": its
        # bytes_mapped (bytes attached via get()) is a different metric
        # from the transport-level bytes_mapped above (bytes the shipped
        # refs describe) and must not shadow it.
        if self.store:
            section["backend"] = {
                k: int(v) for k, v in sorted(self.store.items())
            }
        return section

    def write(self, path: str | Path) -> Path:
        """Atomically write the report; returns the path."""
        path = Path(path)
        atomic_write_text(path, json.dumps(self.to_dict(), indent=2, sort_keys=True))
        return path


def compare_journal_outcomes(
    a: list[dict], b: list[dict], *, ignore: tuple[str, ...] = ()
) -> list[str]:
    """Differences between two run journals, ignoring timing fields.

    Parity oracle for parallel-vs-serial runs: the entries must agree in
    count, order, and every non-timing field.  The on-disk ``check``
    checksum is always ignored (it is a storage artifact, not an
    outcome); callers may ignore further fields via ``ignore`` — the
    chaos soak gate passes ``("attempts",)`` because infrastructure
    redispatch legitimately inflates attempt counts without changing
    outcomes.  Returns human-readable difference descriptions (empty =
    parity holds).
    """
    skip = set(TIMING_FIELDS) | {"check"} | set(ignore)
    diffs: list[str] = []
    if len(a) != len(b):
        diffs.append(f"entry count differs: {len(a)} vs {len(b)}")
    for i, (ea, eb) in enumerate(zip(a, b)):
        ka = {k: v for k, v in ea.items() if k not in skip}
        kb = {k: v for k, v in eb.items() if k not in skip}
        if ka != kb:
            diffs.append(f"entry {i} differs: {ka!r} vs {kb!r}")
    return diffs
