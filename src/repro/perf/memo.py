"""Content-addressed memoization of cache simulations.

The evaluation matrix re-simulates identical (line stream, cache
geometry, prefetch flag) triples across experiments — the baseline
stream of each study program alone is simulated by the intro table,
Table I, Fig. 4, Fig. 5, and every co-run baseline.  :class:`SimMemo`
keys each solo simulation by a content hash of its inputs and replays
the stored :class:`~repro.cache.stats.CacheStats` instead of re-running
the LRU loop.

Keying rules
------------

The key is the SHA-256 of, in order:

* a schema tag (bumped whenever the simulator's semantics change, so
  stale caches can never leak across versions);
* the cache geometry (``size_bytes``/``assoc``/``line_bytes``);
* the prefetch flag;
* the warm-state fingerprint — ``cold`` for a fresh cache, otherwise a
  digest of the exact set contents and pending prefetch tags;
* the stream's content digest (:func:`repro.perf.store.trace_digest`:
  SHA-256 over the stream canonicalized to little-endian ``int64``).

Hashing the *digest* rather than the raw bytes is what unifies memo
keys with :class:`~repro.perf.store.TraceStore` keys: the store's
content key **is** the digest, so every key function here accepts
either the array or its digest string — a caller who already published
a stream derives all of its memo keys without rehashing the bytes.

Two calls share a key iff :func:`repro.cache.setassoc.simulate` would
return identical stats for them.

Warm-state **mutating** calls (``state=`` given) are *keyed* but never
*replayed*: a memo hit cannot reproduce the in-place state mutation the
caller asked for, so those calls pass through to the simulator and are
counted in :attr:`SimMemo.bypasses`.

Persistence is one JSON file per key under ``cache_dir``, written with
the crash-safe :func:`repro.robust.atomic.atomic_write_text` protocol —
a killed run leaves complete entries or none.  Unreadable or
schema-mismatched entries are treated as misses and dropped, never
raised: a cache must degrade to recomputation, not to failure.

Degradation and concurrency
---------------------------

The disk tier is wrapped in a
:class:`~repro.robust.supervisor.CircuitBreaker`: repeated read/write
``OSError`` s (a flaky disk, an NFS brown-out) trip it, after which
lookups run purely against the in-process memo (``degraded`` counts the
skipped disk operations) until the breaker half-opens on its timer and a
probe succeeds.  A missing entry file is a *healthy miss* — the tier
answered — and never counts against the breaker; corrupt entry *content*
stays on the degrade-to-recomputation path and is likewise no strike.

Concurrent writers computing the same key are de-duplicated with a
per-key advisory file lock (``flock`` on ``{key}.lock``): the loser
blocks until the winner publishes, then replays the winner's entry
instead of repeating the simulation.  ``flock`` locks die with their
holder, so a killed winner can never deadlock the losers.  When the
platform has no ``fcntl`` the lock degrades to a no-op — both writers
compute, and the atomic rename keeps the entry intact either way.

Kernel histograms
-----------------

The stack-distance kernel (:mod:`repro.cache.fastsim`) makes a coarser
memo unit worthwhile: its :class:`~repro.cache.fastsim.DistanceHistogram`
depends only on ``(line stream, n_sets)`` — not on ``line_bytes``,
``size_bytes``, or ``assoc`` — so one stored histogram answers every
associativity of a geometry family.  :func:`histogram_key` keys those
entries under the separate ``KERNEL_SCHEMA`` tag, and
:meth:`SimMemo.histogram` / :meth:`SimMemo.simulate_fast` memoize the
histogram itself rather than a single :class:`CacheStats`.
"""

from __future__ import annotations

import hashlib
import json
from contextlib import contextmanager
from pathlib import Path
from typing import Iterator, Optional

import numpy as np

try:
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX fallback
    fcntl = None  # type: ignore[assignment]

from ..cache.config import CacheConfig
from ..cache.fastsim import DistanceHistogram, stack_distance_histogram
from ..cache.setassoc import CacheState, simulate
from ..cache.stats import CacheStats
from ..locality.footprint import FootprintCurve, footprint_curve
from ..robust.atomic import atomic_write_text
from ..robust.faults import MEMO_READ, MEMO_WRITE, maybe_io_fault
from ..robust.supervisor import CircuitBreaker
from .store import trace_digest

__all__ = [
    "SimMemo",
    "affinity_key",
    "analysis_key",
    "curve_key",
    "histogram_key",
    "memo_key",
    "state_fingerprint",
    "trg_key",
]

#: bumped whenever simulate()'s semantics change; invalidates old caches.
#: v3: keys hash the stream's content digest (store-key unification)
#: instead of the raw bytes.
SCHEMA = "repro.perf.memo.v3"

#: separate tag for stack-distance histogram entries (repro.cache.fastsim);
#: bumped whenever the kernel's semantics change (v2: digest-based keys).
KERNEL_SCHEMA = "repro.perf.memo.kernel.v2"

#: tag for locality-model analysis artifacts (repro.core.fastanalysis):
#: affinity coverage histograms and TRG payloads, keyed on the prepared
#: block trace + model parameters.  Bumped whenever either model's
#: semantics change (v2: digest-based keys).
ANALYSIS_SCHEMA = "repro.perf.memo.analysis.v2"

#: tag for all-window footprint curves (repro.locality.footprint).  The
#: curve depends only on the line stream, so one entry answers every
#: capacity, every peer group, and every co-run cell that program
#: appears in — the unit of reuse the fleet composition matrix counts
#: against (repro.fleet).
CURVE_SCHEMA = "repro.perf.memo.curve.v1"

#: stats fields persisted per entry, in schema order.
_STATS_FIELDS = ("accesses", "misses", "prefetches", "prefetch_hits")


def state_fingerprint(state: Optional[CacheState]) -> str:
    """Digest of a warm cache state (``"cold"`` for a fresh cache)."""
    if state is None:
        return "cold"
    h = hashlib.sha256()
    for s in state.sets:
        h.update(np.asarray(s, dtype="<i8").tobytes())
        h.update(b"/")
    h.update(np.asarray(sorted(state.prefetched), dtype="<i8").tobytes())
    return h.hexdigest()


def memo_key(
    lines,
    cfg: CacheConfig,
    *,
    prefetch: bool = False,
    state: Optional[CacheState] = None,
) -> str:
    """Content hash identifying one simulation's full input.

    ``lines`` may be the stream itself or its precomputed
    :func:`~repro.perf.store.trace_digest` — both yield the same key.
    """
    return hashlib.sha256(
        f"{SCHEMA}|{cfg.size_bytes}/{cfg.assoc}/{cfg.line_bytes}"
        f"|pf={int(prefetch)}|st={state_fingerprint(state)}"
        f"|{trace_digest(lines)}".encode()
    ).hexdigest()


def analysis_key(trace, kind: str, params: str) -> str:
    """Content hash identifying one locality-model analysis input.

    ``kind`` names the model (``affinity`` / ``trg``), ``params`` its
    result-relevant parameters — anything that changes the artifact must
    appear here, and nothing that does not (e.g. the affinity
    ``coverage`` threshold is applied at *query* time, so one coverage
    entry serves every threshold).  ``trace`` may be the symbol stream
    or its precomputed content digest.
    """
    return hashlib.sha256(
        f"{ANALYSIS_SCHEMA}|{kind}|{params}|{trace_digest(trace)}".encode()
    ).hexdigest()


def affinity_key(
    trace, *, w_max: int, time_horizon: Optional[int] = None
) -> str:
    """Key of one affinity-coverage artifact (all w <= w_max at once)."""
    return analysis_key(trace, "affinity", f"w={int(w_max)}/h={time_horizon}")


def trg_key(trace, *, window_blocks: Optional[int] = None) -> str:
    """Key of one TRG artifact."""
    return analysis_key(trace, "trg", f"win={window_blocks}")


def curve_key(lines) -> str:
    """Content hash identifying one footprint curve's input.

    The all-window footprint depends on the line stream alone — no
    geometry, no peers — so this is the coarsest memo unit in the
    family.  ``lines`` may be the stream or its content digest.
    """
    return hashlib.sha256(f"{CURVE_SCHEMA}|{trace_digest(lines)}".encode()).hexdigest()


def histogram_key(lines, n_sets: int) -> str:
    """Content hash identifying one stack-distance histogram's input.

    Deliberately coarser than :func:`memo_key`: the histogram depends
    only on the stream and ``n_sets``, so every associativity (and any
    ``line_bytes``) of the family shares one entry.  ``lines`` may be
    the stream or its content digest.
    """
    return hashlib.sha256(
        f"{KERNEL_SCHEMA}|sets={int(n_sets)}|{trace_digest(lines)}".encode()
    ).hexdigest()


class SimMemo:
    """Memo cache for :func:`repro.cache.setassoc.simulate` results.

    Parameters
    ----------
    cache_dir:
        optional directory for persistent entries.  ``None`` keeps the
        memo purely in-memory (one process lifetime).
    breaker:
        the :class:`~repro.robust.supervisor.CircuitBreaker` guarding
        the disk tier (a default one is built when omitted).  Tripped,
        the memo keeps answering from memory and recomputation while
        ``degraded`` counts the skipped disk operations.

    Counters: ``hits`` / ``misses`` split lookups; ``bypasses`` counts
    warm-state mutating calls that skipped the memo entirely;
    ``disk_failures`` / ``degraded`` / ``lock_waits`` track the disk
    tier's health (see the module docstring).
    """

    def __init__(
        self,
        cache_dir: Optional[str | Path] = None,
        *,
        breaker: Optional[CircuitBreaker] = None,
    ):
        self.cache_dir = Path(cache_dir) if cache_dir is not None else None
        self.breaker = breaker if breaker is not None else CircuitBreaker()
        self._mem: dict[str, CacheStats] = {}
        self._mem_hist: dict[str, DistanceHistogram] = {}
        self._mem_analysis: dict[str, dict] = {}
        self._mem_curve: dict[str, FootprintCurve] = {}
        self.hits = 0
        self.misses = 0
        self.bypasses = 0
        self.disk_failures = 0
        self.degraded = 0
        self.lock_waits = 0

    # -- storage -----------------------------------------------------------

    def _entry_path(self, key: str) -> Path:
        assert self.cache_dir is not None
        return self.cache_dir / f"{key}.json"

    def _disk_read(self, path: Path) -> Optional[str]:
        """Read an entry file through the circuit breaker.

        Returns the text, or None when the file is absent (a healthy
        miss — the tier answered, no strike), the tier is degraded
        (breaker open), or the read itself failed (one strike).
        """
        if not self.breaker.allow():
            self.degraded += 1
            return None
        try:
            maybe_io_fault(MEMO_READ, str(path))
            text = path.read_text()
        except FileNotFoundError:
            self.breaker.record_success()
            return None
        except OSError:
            self.disk_failures += 1
            self.breaker.record_failure()
            return None
        self.breaker.record_success()
        return text

    def _disk_write(self, path: Path, text: str) -> bool:
        """Persist an entry through the circuit breaker; False if the
        write was skipped (degraded) or failed.  The in-memory tier has
        the entry either way, so callers never need the outcome."""
        if not self.breaker.allow():
            self.degraded += 1
            return False
        assert self.cache_dir is not None
        try:
            maybe_io_fault(MEMO_WRITE, str(path))
            self.cache_dir.mkdir(parents=True, exist_ok=True)
            atomic_write_text(path, text)
        except OSError:
            self.disk_failures += 1
            self.breaker.record_failure()
            return False
        self.breaker.record_success()
        return True

    @staticmethod
    def _drop_entry(path: Path) -> None:
        try:
            path.unlink(missing_ok=True)
        except OSError:
            pass  # cleanup is best-effort; the entry already lost.

    @contextmanager
    def _key_lock(self, key: str) -> Iterator[bool]:
        """Cross-process advisory lock for one key (compute dedup).

        Yields True when another holder was waited on — the caller
        should re-check the entry before recomputing, because the winner
        published it while we blocked.  ``flock`` is released by the
        kernel when its holder dies, so a killed winner cannot strand
        the losers; on lockless platforms (or an unwritable cache dir)
        this degrades to a no-op and both writers compute.
        """
        if self.cache_dir is None or fcntl is None:
            yield False
            return
        try:
            self.cache_dir.mkdir(parents=True, exist_ok=True)
            fh = open(self.cache_dir / f"{key}.lock", "a+")
        except OSError:
            yield False
            return
        waited = False
        try:
            try:
                fcntl.flock(fh.fileno(), fcntl.LOCK_EX | fcntl.LOCK_NB)
            except OSError:
                self.lock_waits += 1
                waited = True
                fcntl.flock(fh.fileno(), fcntl.LOCK_EX)
            yield waited
        finally:
            try:
                fcntl.flock(fh.fileno(), fcntl.LOCK_UN)
            except OSError:
                pass
            fh.close()

    def get(self, key: str) -> Optional[CacheStats]:
        """Stored stats for ``key``, counting the lookup as hit or miss."""
        stats = self._peek(key)
        if stats is None:
            self.misses += 1
            return None
        self.hits += 1
        return stats

    def _peek(self, key: str) -> Optional[CacheStats]:
        stats = self._mem.get(key)
        if stats is not None:
            return _copy(stats)
        if self.cache_dir is None:
            return None
        path = self._entry_path(key)
        text = self._disk_read(path)
        if text is None:
            return None
        try:
            raw = json.loads(text)
            if raw.get("schema") != SCHEMA:
                raise ValueError(f"schema {raw.get('schema')!r}")
            stats = CacheStats(**{f: int(raw[f]) for f in _STATS_FIELDS})
        except (ValueError, TypeError, KeyError):
            # Corrupt or stale entry: a cache degrades to recomputation.
            self._drop_entry(path)
            return None
        self._mem[key] = stats
        return _copy(stats)

    def put(self, key: str, stats: CacheStats) -> None:
        """Store ``stats`` under ``key`` (in memory, and on disk if enabled)."""
        self._mem[key] = _copy(stats)
        if self.cache_dir is not None:
            payload = {"schema": SCHEMA}
            payload.update({f: getattr(stats, f) for f in _STATS_FIELDS})
            self._disk_write(self._entry_path(key), json.dumps(payload, sort_keys=True))

    def invalidate(self, key: str) -> bool:
        """Drop ``key`` from memory and disk; True if anything was removed."""
        removed = self._mem.pop(key, None) is not None
        removed = self._mem_hist.pop(key, None) is not None or removed
        removed = self._mem_analysis.pop(key, None) is not None or removed
        removed = self._mem_curve.pop(key, None) is not None or removed
        if self.cache_dir is not None:
            path = self._entry_path(key)
            if path.exists():
                path.unlink()
                removed = True
            # The lock sidecar is bookkeeping, not an entry: drop it
            # silently and without affecting the return value.
            self._drop_entry(self.cache_dir / f"{key}.lock")
        return removed

    # -- the memoizing simulator ------------------------------------------

    def simulate(
        self,
        lines: np.ndarray,
        cfg: CacheConfig,
        *,
        prefetch: bool = False,
        state: Optional[CacheState] = None,
    ) -> CacheStats:
        """Drop-in for :func:`repro.cache.setassoc.simulate`, memoized.

        Warm-state calls mutate ``state`` in place, which a replay cannot
        reproduce — they bypass the memo (counted in ``bypasses``).
        """
        if state is not None:
            self.bypasses += 1
            return simulate(lines, cfg, prefetch=prefetch, state=state)
        key = memo_key(lines, cfg, prefetch=prefetch)
        stats = self.get(key)
        if stats is None:
            with self._key_lock(key) as waited:
                if waited:
                    # The lock's previous holder computed this very key;
                    # replay its published entry instead of repeating
                    # the simulation.
                    stats = self._peek(key)
                    if stats is not None:
                        self.hits += 1
                if stats is None:
                    stats = simulate(lines, cfg, prefetch=prefetch)
                    self.put(key, stats)
        return stats

    # -- kernel histograms (repro.cache.fastsim) ---------------------------

    def _peek_histogram(self, key: str) -> Optional[DistanceHistogram]:
        hist = self._mem_hist.get(key)
        if hist is None and self.cache_dir is not None:
            path = self._entry_path(key)
            text = self._disk_read(path)
            if text is not None:
                try:
                    raw = json.loads(text)
                    if raw.get("schema") != KERNEL_SCHEMA:
                        raise ValueError(f"schema {raw.get('schema')!r}")
                    hist = DistanceHistogram.from_dict(raw)
                except (ValueError, TypeError, KeyError):
                    self._drop_entry(path)
                    hist = None
            if hist is not None:
                self._mem_hist[key] = hist
        return hist

    def get_histogram(self, key: str) -> Optional[DistanceHistogram]:
        """Stored histogram for ``key``, counted as a hit or miss."""
        hist = self._peek_histogram(key)
        if hist is None:
            self.misses += 1
            return None
        self.hits += 1
        return hist

    def put_histogram(self, key: str, hist: DistanceHistogram) -> None:
        """Store ``hist`` under ``key`` (in memory, and on disk if enabled)."""
        self._mem_hist[key] = hist
        if self.cache_dir is not None:
            payload = {"schema": KERNEL_SCHEMA}
            payload.update(hist.to_dict())
            self._disk_write(self._entry_path(key), json.dumps(payload, sort_keys=True))

    def histogram(
        self, lines: np.ndarray, n_sets: int, *, backend=None
    ) -> DistanceHistogram:
        """Memoized :func:`repro.cache.fastsim.stack_distance_histogram`.

        The histogram is immutable in practice (``misses()`` only builds
        an internal suffix sum), so the stored object is returned
        directly — no per-call copy.

        ``backend`` (a :class:`repro.perf.backends.KernelBackend`) picks
        the construction used on a miss.  It deliberately does NOT enter
        the key: every tier is bit-identical by contract, so entries are
        shared across backends (pinned by the cross-backend memo-hit
        test).
        """
        key = histogram_key(lines, n_sets)
        hist = self.get_histogram(key)
        if hist is None:
            with self._key_lock(key) as waited:
                if waited:
                    hist = self._peek_histogram(key)
                    if hist is not None:
                        self.hits += 1
                if hist is None:
                    if backend is not None:
                        hist = backend.histogram(lines, n_sets)
                    else:
                        hist = stack_distance_histogram(lines, n_sets)
                    self.put_histogram(key, hist)
        return hist

    def simulate_fast(
        self, lines: np.ndarray, cfg: CacheConfig, *, backend=None
    ) -> CacheStats:
        """Memoized :func:`repro.cache.fastsim.simulate_fast` (cold, no
        prefetch); one histogram entry serves every ``assoc`` of this
        ``n_sets``."""
        return self.histogram(lines, cfg.n_sets, backend=backend).stats(cfg.assoc)

    # -- footprint curves (repro.locality.footprint) ------------------------

    def _peek_curve(self, key: str) -> Optional[FootprintCurve]:
        curve = self._mem_curve.get(key)
        if curve is None and self.cache_dir is not None:
            path = self._entry_path(key)
            text = self._disk_read(path)
            if text is not None:
                try:
                    raw = json.loads(text)
                    if raw.get("schema") != CURVE_SCHEMA:
                        raise ValueError(f"schema {raw.get('schema')!r}")
                    curve = FootprintCurve.from_dict(raw)
                except (ValueError, TypeError, KeyError):
                    self._drop_entry(path)
                    curve = None
            if curve is not None:
                self._mem_curve[key] = curve
        return curve

    def get_curve(self, key: str) -> Optional[FootprintCurve]:
        """Stored footprint curve for ``key``, counted as a hit or miss."""
        curve = self._peek_curve(key)
        if curve is None:
            self.misses += 1
            return None
        self.hits += 1
        return curve

    def put_curve(self, key: str, curve: FootprintCurve) -> None:
        """Store ``curve`` under ``key`` (in memory, and on disk if enabled).

        JSON round-trips floats through ``repr``, so a reloaded curve is
        bit-identical to the stored one — composition parity survives
        persistence.
        """
        self._mem_curve[key] = curve
        if self.cache_dir is not None:
            payload = {"schema": CURVE_SCHEMA}
            payload.update(curve.to_dict())
            self._disk_write(self._entry_path(key), json.dumps(payload, sort_keys=True))

    def footprint_curve(self, lines: np.ndarray) -> FootprintCurve:
        """Memoized :func:`repro.locality.footprint.footprint_curve`.

        The curve is immutable in practice (readers only index ``fp``),
        so the stored object is returned directly — no per-call copy.
        """
        key = curve_key(lines)
        curve = self.get_curve(key)
        if curve is None:
            with self._key_lock(key) as waited:
                if waited:
                    curve = self._peek_curve(key)
                    if curve is not None:
                        self.hits += 1
                if curve is None:
                    curve = footprint_curve(np.asarray(lines))
                    self.put_curve(key, curve)
        return curve

    # -- analysis artifacts (repro.core.fastanalysis) -----------------------

    def _peek_analysis(self, key: str, parse):
        """Load + parse an analysis payload without touching counters.

        ``parse`` raises ``ValueError`` on malformed payloads, which —
        like any other corruption — degrades to a miss (and an unlink on
        disk), never to a failure or a silently wrong artifact.
        """
        raw = self._mem_analysis.get(key)
        if raw is not None:
            try:
                return parse(raw)
            except (ValueError, TypeError, KeyError):
                self._mem_analysis.pop(key, None)
        if self.cache_dir is not None:
            path = self._entry_path(key)
            text = self._disk_read(path)
            if text is not None:
                try:
                    raw = json.loads(text)
                    if raw.get("schema") != ANALYSIS_SCHEMA:
                        raise ValueError(f"schema {raw.get('schema')!r}")
                    obj = parse(raw)
                except (ValueError, TypeError, KeyError):
                    self._drop_entry(path)
                else:
                    self._mem_analysis[key] = raw
                    return obj
        return None

    def _get_analysis(self, key: str, parse):
        """Load + parse an analysis payload; hit/miss counted."""
        obj = self._peek_analysis(key, parse)
        if obj is None:
            self.misses += 1
            return None
        self.hits += 1
        return obj

    def has_analysis(self, key: str) -> bool:
        """True if an entry exists for ``key`` (no counters, no parse).

        A planning probe for batch precomputation: existence does not
        guarantee validity — a corrupt entry will still degrade to a
        recomputation at consumption time.
        """
        if key in self._mem_analysis:
            return True
        return self.cache_dir is not None and self._entry_path(key).exists()

    def put_analysis(self, key: str, payload: dict) -> None:
        """Store an analysis payload (in memory, and on disk if enabled)."""
        payload = {"schema": ANALYSIS_SCHEMA, **payload}
        self._mem_analysis[key] = payload
        if self.cache_dir is not None:
            self._disk_write(
                self._entry_path(key), json.dumps(payload, sort_keys=True)
            )

    def affinity_coverage(
        self,
        trace: np.ndarray,
        *,
        w_max: int,
        time_horizon: Optional[int] = None,
        backend=None,
    ):
        """Memoized :func:`repro.core.fastanalysis.affinity_coverage`.

        One entry answers every ``coverage`` threshold and every
        ``w <= w_max`` (both are applied at query time).  ``backend``
        picks the kernel tier used on a miss and never enters the key
        (tiers are bit-identical by contract).
        """
        from ..core.fastanalysis import AffinityCoverage, affinity_coverage

        key = affinity_key(trace, w_max=w_max, time_horizon=time_horizon)

        def parse(raw: dict):
            covg = AffinityCoverage.from_dict(raw)
            if covg.w_max != w_max or covg.time_horizon != time_horizon:
                raise ValueError("analysis entry parameters do not match key")
            return covg

        covg = self._get_analysis(key, parse)
        if covg is None:
            with self._key_lock(key) as waited:
                if waited:
                    covg = self._peek_analysis(key, parse)
                    if covg is not None:
                        self.hits += 1
                if covg is None:
                    if backend is not None:
                        covg = backend.affinity(
                            trace, w_max=w_max, time_horizon=time_horizon
                        )
                    else:
                        covg = affinity_coverage(
                            trace, w_max=w_max, time_horizon=time_horizon
                        )
                    self.put_analysis(key, covg.to_dict())
        return covg

    def trg(
        self,
        trace: np.ndarray,
        *,
        window_blocks: Optional[int] = None,
        backend=None,
    ):
        """Memoized :func:`repro.core.fastanalysis.build_trg_fast`.

        Always returns a *fresh* :class:`~repro.core.trg.TRG` — callers
        may hand the graph to mutating consumers.  ``backend`` picks the
        kernel tier used on a miss and never enters the key.
        """
        from ..core.fastanalysis import (
            build_trg_fast,
            trg_from_payload,
            trg_to_payload,
        )

        key = trg_key(trace, window_blocks=window_blocks)
        trg = self._get_analysis(key, trg_from_payload)
        if trg is None:
            with self._key_lock(key) as waited:
                if waited:
                    trg = self._peek_analysis(key, trg_from_payload)
                    if trg is not None:
                        self.hits += 1
                if trg is None:
                    if backend is not None:
                        trg = backend.trg(trace, window_blocks)
                    else:
                        trg = build_trg_fast(trace, window_blocks=window_blocks)
                    self.put_analysis(key, trg_to_payload(trg, window_blocks))
        return trg

    # -- introspection -----------------------------------------------------

    @property
    def hit_rate(self) -> float:
        """Hits over keyed lookups (bypasses excluded); 0.0 when unused."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def counters(self) -> dict[str, float]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "bypasses": self.bypasses,
            "disk_failures": self.disk_failures,
            "degraded": self.degraded,
            "lock_waits": self.lock_waits,
            "breaker_trips": self.breaker.trips,
            "breaker_recoveries": self.breaker.recoveries,
            "hit_rate": round(self.hit_rate, 4),
        }

    def scrub(self) -> tuple[int, int]:
        """Validate every on-disk entry; returns ``(kept, dropped)``.

        Drops entries that are unreadable, non-JSON, or carry an unknown
        schema tag, plus stray ``.lock`` and ``.tmp`` files (lock files
        from finished dedups, temp files from killed atomic writes).
        Run after a chaos soak — or any hard kill — to guarantee the
        cache directory holds only complete, valid artifacts.
        """
        if self.cache_dir is None or not self.cache_dir.exists():
            return (0, 0)
        kept = dropped = 0
        valid = (SCHEMA, KERNEL_SCHEMA, ANALYSIS_SCHEMA, CURVE_SCHEMA)
        for path in sorted(self.cache_dir.iterdir()):
            if path.suffix in (".lock", ".tmp"):
                self._drop_entry(path)
                continue
            if path.suffix != ".json":
                continue
            try:
                ok = json.loads(path.read_text()).get("schema") in valid
            except (OSError, ValueError):
                ok = False
            if ok:
                kept += 1
            else:
                self._drop_entry(path)
                dropped += 1
        return (kept, dropped)


def _copy(stats: CacheStats) -> CacheStats:
    """Callers may mutate returned stats; never alias the stored entry."""
    return CacheStats(
        accesses=stats.accesses,
        misses=stats.misses,
        prefetches=stats.prefetches,
        prefetch_hits=stats.prefetch_hits,
    )
