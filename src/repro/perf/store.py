"""Zero-copy, content-addressed trace store: mmap-backed int64 streams.

The cell fan-out layers (:mod:`repro.perf.parallel`) used to pickle every
line/symbol stream into every worker dispatch — serialization cost that
scales with *trace size*, not with *work*.  :class:`TraceStore` moves the
streams into memory-mapped files under a content hash so a dispatch
ships a ~100-byte :class:`StoreRef` descriptor instead of megabytes of
array, and workers attach with :func:`numpy.memmap` reads that copy
nothing until the kernel actually touches the pages.

Keying
------

A store key is :func:`trace_digest` — the SHA-256 of the stream
canonicalized to little-endian ``int64`` — with **no schema header**, so
it identifies the *content*, not any consumer's view of it.  The memo
keys (:func:`repro.perf.memo.memo_key` / ``histogram_key`` /
``analysis_key``) are built *from* this digest: every one of them
accepts either the raw array or a precomputed digest string and hashes
the digest, which means a store key doubles as the trace component of
every memo key.  Publish a stream once, and its digest keys the store
entry, the histogram memo entry, and the analysis memo entries without
ever hashing the bytes again.

Durability
----------

Entries are standard ``.npy`` files (so corruption detection rides on
the format's own magic/header/size validation) published with the
crash-safe write-temp-then-rename protocol of
:mod:`repro.robust.atomic`: a killed writer leaves a complete entry or
none.  Concurrent writers racing on one key are harmless — the content
hash guarantees both write identical bytes and the atomic rename keeps
whichever finishes last.  A corrupt or truncated entry is unlinked and
reported as a miss (``corrupt_dropped``); like the memo, the store
degrades to recomputation, never to failure or to silently wrong data.

Reads are cached per process (``self._maps``), so repeated ``get`` s of
one key share a single open memmap instead of churning file
descriptors.  The maps are read-only; consumers that need to mutate
must copy, which keeps one worker's bug from corrupting every other
worker's input.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from pathlib import Path
from typing import Optional

import numpy as np

from ..robust.atomic import atomic_write

__all__ = ["StoreRef", "TraceStore", "trace_digest"]


def _canonical(arr: np.ndarray) -> np.ndarray:
    """The store's one true representation: contiguous little-endian int64."""
    return np.ascontiguousarray(np.asarray(arr), dtype="<i8")


def trace_digest(trace) -> str:
    """Content hash of a stream (or pass a digest string through).

    The shared currency between the store and the memo: computed once at
    publish time, it keys the store entry directly and feeds every memo
    key via the digest-accepting overloads in :mod:`repro.perf.memo`.
    """
    if isinstance(trace, str):
        return trace
    return hashlib.sha256(_canonical(trace).tobytes()).hexdigest()


@dataclass(frozen=True)
class StoreRef:
    """A picklable descriptor of one published stream.

    What actually crosses the process boundary when a store is attached:
    the content key plus the element count (so schedulers can reason
    about work size without touching the store).
    """

    key: str
    length: int

    @property
    def nbytes(self) -> int:
        """Size of the described stream's canonical representation."""
        return self.length * 8


class TraceStore:
    """Content-addressed, mmap-backed storage for int64 streams.

    Counters: ``puts`` / ``dup_puts`` split publishes into fresh writes
    and content-hash dedups; ``hits`` / ``misses`` split reads;
    ``bytes_written`` and ``bytes_mapped`` measure the disk and mmap
    traffic; ``corrupt_dropped`` counts entries unlinked by validation.
    """

    def __init__(self, root: str | Path):
        self.root = Path(root)
        self._maps: dict[str, np.ndarray] = {}
        self.puts = 0
        self.dup_puts = 0
        self.hits = 0
        self.misses = 0
        self.bytes_written = 0
        self.bytes_mapped = 0
        self.corrupt_dropped = 0

    def _path(self, key: str) -> Path:
        return self.root / f"{key}.npy"

    # -- publish ------------------------------------------------------------

    def put(self, trace: np.ndarray, *, key: Optional[str] = None) -> str:
        """Publish a stream; returns its content key.

        Idempotent: an existing entry under the same key is trusted (the
        key *is* the content) and counted as ``dup_puts``.  The write is
        atomic, so a concurrent reader sees the complete old entry, the
        complete new one, or a miss — never a prefix.  Callers that
        already hold the stream's :func:`trace_digest` pass it as ``key``
        to skip rehashing (the memo-key paths do exactly this).
        """
        arr = _canonical(trace)
        if key is None:
            key = hashlib.sha256(arr.tobytes()).hexdigest()
        path = self._path(key)
        if key in self._maps or path.exists():
            self.dup_puts += 1
            return key
        self.root.mkdir(parents=True, exist_ok=True)
        with atomic_write(path, binary=True) as fh:
            np.lib.format.write_array(fh, arr, allow_pickle=False)
        self.puts += 1
        self.bytes_written += arr.nbytes
        return key

    def ref(self, trace: np.ndarray, *, key: Optional[str] = None) -> StoreRef:
        """Publish a stream and return its dispatch descriptor."""
        arr = _canonical(trace)
        return StoreRef(self.put(arr, key=key), int(arr.shape[0]))

    # -- attach -------------------------------------------------------------

    def get(self, key: str) -> Optional[np.ndarray]:
        """Zero-copy read-only view of the entry, or None.

        A missing entry is a healthy miss; a corrupt one (bad magic,
        truncated payload, wrong dtype/shape) is unlinked and reported
        as a miss too — consumers must degrade to recomputation, exactly
        like a memo miss.
        """
        arr = self._maps.get(key)
        if arr is None:
            arr = self._load(key)
            if arr is None:
                self.misses += 1
                return None
            self._maps[key] = arr
        self.hits += 1
        self.bytes_mapped += arr.nbytes
        return arr

    def _load(self, key: str) -> Optional[np.ndarray]:
        path = self._path(key)
        try:
            arr = np.load(path, mmap_mode="r", allow_pickle=False)
        except FileNotFoundError:
            return None
        except (OSError, ValueError, EOFError):
            self._drop(path)
            return None
        if arr.ndim != 1 or arr.dtype != np.dtype("<i8"):
            self._drop(path)
            return None
        return arr

    def _drop(self, path: Path) -> None:
        self.corrupt_dropped += 1
        try:
            path.unlink(missing_ok=True)
        except OSError:
            pass  # best-effort; the entry already lost.

    def resolve(self, trace):
        """The worker-side accessor: a :class:`StoreRef` becomes its
        mapped stream, anything else passes through as an array.

        Raises ``KeyError`` when a ref's entry is missing or corrupt —
        the caller (not the store) decides how to degrade, because only
        it may still hold the original bytes.
        """
        if isinstance(trace, StoreRef):
            arr = self.get(trace.key)
            if arr is None:
                raise KeyError(trace.key)
            return arr
        return np.asarray(trace)

    def contains(self, key: str) -> bool:
        return key in self._maps or self._path(key).exists()

    def verify(self, key: str) -> bool:
        """Recompute the entry's content hash against its key.

        Expensive (reads every byte); for scrubs and tests, not the hot
        path — ordinary reads trust the ``.npy`` structural validation.
        """
        arr = self._load(key)
        if arr is None:
            return False
        if trace_digest(np.asarray(arr)) != key:
            self._maps.pop(key, None)
            self._drop(self._path(key))
            return False
        return True

    def scrub(self) -> tuple[int, int]:
        """Content-verify every entry; returns ``(kept, dropped)``.

        Also removes stray ``.tmp`` files from killed atomic writes.
        """
        if not self.root.exists():
            return (0, 0)
        kept = dropped = 0
        for path in sorted(self.root.iterdir()):
            if path.suffix == ".tmp":
                path.unlink(missing_ok=True)
                continue
            if path.suffix != ".npy":
                continue
            if self.verify(path.stem):
                kept += 1
            else:
                dropped += 1
        return (kept, dropped)

    # -- introspection ------------------------------------------------------

    def counters(self) -> dict[str, int]:
        return {
            "puts": self.puts,
            "dup_puts": self.dup_puts,
            "hits": self.hits,
            "misses": self.misses,
            "bytes_written": self.bytes_written,
            "bytes_mapped": self.bytes_mapped,
            "corrupt_dropped": self.corrupt_dropped,
        }
