"""Performance subsystem: parallel execution, memoization, telemetry.

The evaluation matrix (programs x layouts x cache configs x co-run
pairs) is embarrassingly parallel and heavily redundant; this package
makes it fast without changing a single result:

- :mod:`repro.perf.parallel` — process-pool fan-out at two levels:
  whole experiments (``python -m repro.experiments --jobs N``) and
  independent simulation cells inside a pipeline
  (:func:`~repro.perf.parallel.simulate_cells`);
- :mod:`repro.perf.memo` — a content-addressed, disk-persistent memo
  cache for cache simulations (:class:`~repro.perf.memo.SimMemo`),
  keyed by hash of (line stream, geometry, prefetch flag, warm state);
  stack-distance histograms get their own coarser keys
  (:func:`~repro.perf.memo.histogram_key`: stream + ``n_sets`` only),
  so one entry answers a whole associativity family; locality-model
  analysis artifacts (w-affinity coverage tables, TRGs) are memoized
  under :data:`~repro.perf.memo.ANALYSIS_SCHEMA` keys
  (:func:`~repro.perf.memo.affinity_key`,
  :func:`~repro.perf.memo.trg_key`: symbol stream + model parameters);
- :mod:`repro.perf.store` — a zero-copy, content-addressed trace store
  (:class:`~repro.perf.store.TraceStore`): int64 streams persist as
  mmap-backed ``.npy`` entries keyed by :func:`~repro.perf.store.trace_digest`
  (the same digest every memo key consumes), so cell dispatches ship
  ~100-byte :class:`~repro.perf.store.StoreRef` descriptors instead of
  pickled arrays and workers attach with ``np.memmap`` reads;
- :mod:`repro.perf.telemetry` — per-stage wall time, simulator
  throughput, and memo hit rates aggregated into ``BENCH_perf.json``
  (:class:`~repro.perf.telemetry.Telemetry`), plus the journal-parity
  oracle used by the CI benchmark smoke job
  (``python -m repro.perf compare-journals``).

Determinism is the contract: every knob here trades wall-clock time,
never results — enforced by ``tests/perf/``.
"""

from .backends import (
    KernelBackend,
    available_backends,
    default_backend,
    resolve_backend,
)
from .memo import (
    ANALYSIS_SCHEMA,
    SimMemo,
    affinity_key,
    analysis_key,
    histogram_key,
    memo_key,
    state_fingerprint,
    trg_key,
)
from .parallel import (
    CellPool,
    ExperimentPool,
    analysis_cells,
    histogram_cells,
    rebuild_error,
    simulate_cells,
)
from .store import StoreRef, TraceStore, trace_digest
from .telemetry import BENCH_SCHEMA, Telemetry, compare_journal_outcomes

__all__ = [
    "ANALYSIS_SCHEMA",
    "BENCH_SCHEMA",
    "CellPool",
    "KernelBackend",
    "ExperimentPool",
    "SimMemo",
    "StoreRef",
    "Telemetry",
    "TraceStore",
    "affinity_key",
    "analysis_cells",
    "analysis_key",
    "available_backends",
    "compare_journal_outcomes",
    "default_backend",
    "histogram_cells",
    "histogram_key",
    "memo_key",
    "rebuild_error",
    "resolve_backend",
    "simulate_cells",
    "state_fingerprint",
    "trace_digest",
    "trg_key",
]
