"""``python -m repro.perf`` — perf tooling CLI.

Subcommands:

``compare-journals A B``
    Assert two run journals describe the same suite outcomes, ignoring
    timing fields (``elapsed_s``, ``finished_at``, ``timings``).  Exit 0
    on parity, 1 with a difference listing otherwise.  This is the
    parity gate of the CI benchmark smoke job: a ``--jobs N`` run must
    journal exactly what the serial run journals.

``show-bench PATH``
    Pretty-print the headline numbers of a ``BENCH_perf.json``.

``kernel-bench``
    Parity gate + speedup measurement for the stack-distance kernel
    across every registered backend tier (:mod:`repro.perf.backends`):
    builds a real fetch stream, runs the scalar *simulator* once per
    associativity of a geometry family (the reference), then runs one
    histogram pass per tier, asserts every tier's miss counts are
    **bit-identical** to the simulator and to each other (exit 1 on any
    divergence), and reports per-tier speedups.  Timings are the
    minimum over ``--reps`` repetitions.  ``--backend`` restricts the
    tier list; ``--min-speedup`` gates the fastest tier;
    ``--baseline PATH`` gates each tier's speedup against a committed
    ``BENCH_kernel.json`` (no-regression floor, ``--regression-factor``
    of the committed figure); ``--out PATH`` writes a standalone
    ``BENCH_kernel.json``; ``--bench PATH`` merges the numbers into a
    ``BENCH_perf.json`` under ``kernel_bench``.

``analysis-bench``
    Parity gate + speedup measurement for the locality-model analysis
    kernels (:mod:`repro.core.fastanalysis`): builds a real symbol
    trace, runs the scalar oracles (``AffinityAnalysis`` for the full
    ``2..w_max`` sweep and ``build_trg``), then runs each non-scalar
    backend tier's kernels, asserts every tier's artifacts are
    **bit-identical** to the oracles (exit 1 on any divergence), and
    reports per-tier analysis-stage speedups.  Timings are the minimum
    over ``--reps`` repetitions (single runs are noisy on shared
    machines).  ``--backend`` restricts the tier list;
    ``--min-speedup`` gates the fastest tier; ``--bench PATH`` merges
    the numbers under ``analysis_bench``; ``--out PATH`` writes a
    standalone ``BENCH_analysis.json``.

Both benches accept ``--require-compiled-wins`` (used by the CI
``[compiled]`` job) to additionally assert that the ``compiled`` tier,
when measured, is at least as fast as ``numpy``.

``store-bench``
    Transport gate for the zero-copy trace store
    (:mod:`repro.perf.store`): fans the L1I-family histogram cells of
    several programs across a ``--jobs`` worker pool twice — once
    shipping pickled arrays, once shipping :class:`~repro.perf.store.StoreRef`
    descriptors against a store — asserts the results are
    **bit-identical**, and reports per-cell bytes shipped both ways.
    ``--min-ratio`` turns the reduction into a gate (CI requires 10x);
    ``--bench PATH`` merges the numbers under ``store_bench``.

Both ``kernel-bench`` and ``analysis-bench`` accept ``--store-dir`` to
route their kernel-side inputs through the store's memmap reads, so the
existing parity gates double as zero-copy correctness gates.
"""

from __future__ import annotations

import argparse
import json
import sys
import time

from .telemetry import BENCH_SCHEMA, COMPAT_SCHEMAS, compare_journal_outcomes


def _load_journal(path: str) -> list[dict]:
    from ..robust.journal import RunJournal

    return [json.loads(e.to_json()) for e in RunJournal(path).entries()]


#: schema tag of the standalone kernel-bench report (``--out``); this is
#: the format of the committed ``BENCH_kernel.json`` baseline.
KERNEL_BENCH_SCHEMA = "repro.perf/kernel-bench.v1"


def _select_backends(spec, *, include_scalar: bool = True) -> list[str]:
    """Resolve a ``--backend`` spec to a validated tier-name list.

    ``None``/``"all"`` means every available tier (fastest first);
    an explicit comma-separated list is resolved strictly, so asking
    for an uninstalled tier fails loudly.  Raises ValueError.
    """
    from .backends import available_backends, resolve_backend

    if spec in (None, "", "all"):
        names = list(available_backends())
        if not include_scalar:
            names = [n for n in names if n != "scalar"]
        return names
    names = [s.strip() for s in spec.split(",") if s.strip()]
    if not names:
        raise ValueError("--backend selects no tiers")
    for name in names:
        resolve_backend(name)  # strict: unknown/unavailable raises
    return names


def _check_compiled_wins(rows: dict, require: bool) -> list[str]:
    """The tier-order gate: ``compiled`` must not lose to ``numpy``."""
    if "compiled" not in rows or "numpy" not in rows:
        return []
    c, n = rows["compiled"]["seconds"], rows["numpy"]["seconds"]
    if c <= n:
        return []
    msg = f"compiled tier slower than numpy ({c:.4f}s vs {n:.4f}s)"
    if require:
        return [msg]
    print(f"warning: {msg}", file=sys.stderr)
    return []


def _run_kernel_bench(args) -> int:
    import numpy as np

    from ..cache.config import CacheConfig
    from ..cache.setassoc import simulate
    from ..experiments.pipeline import BASELINE, Lab
    from ..robust.atomic import atomic_write_text
    from .backends import resolve_backend

    assocs = [int(a) for a in args.assocs.split(",")]
    reps = max(1, args.reps)
    try:
        names = _select_backends(args.backend)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    lab = Lab(scale=args.scale)
    stream = lab.lines(args.program, BASELINE)
    n_sets = args.n_sets

    # Scalar reference: one full LRU pass per associativity (best of reps).
    scalar_misses: dict[int, int] = {}
    scalar_s = float("inf")
    for _ in range(reps):
        t0 = time.perf_counter()
        for assoc in assocs:
            cfg = CacheConfig(
                size_bytes=n_sets * assoc * 64, assoc=assoc, line_bytes=64
            )
            scalar_misses[assoc] = simulate(stream, cfg).misses
        scalar_s = min(scalar_s, time.perf_counter() - t0)

    kernel_input = np.asarray(stream)
    if args.store_dir is not None:
        # Route the kernels' input through the store: publish once, read
        # back as a zero-copy memmap, so the parity assertions below also
        # certify the mmap transport path.
        from .store import TraceStore

        store = TraceStore(args.store_dir)
        kernel_input = store.resolve(store.ref(stream))

    # One histogram pass per tier answers the whole family.
    rows: dict[str, dict] = {}
    ref_dict = None
    mismatches: list[str] = []
    for name in names:
        backend = resolve_backend(name)
        if name == "compiled":
            backend.histogram(kernel_input, n_sets)  # JIT warm-up
        best, hist = float("inf"), None
        for _ in range(reps):
            t0 = time.perf_counter()
            hist = backend.histogram(kernel_input, n_sets)
            best = min(best, time.perf_counter() - t0)
        for a in assocs:
            got = hist.misses(a)
            if got != scalar_misses[a]:
                mismatches.append(
                    f"{name}: assoc={a}: scalar {scalar_misses[a]} != {got}"
                )
        if ref_dict is None:
            ref_dict = hist.to_dict()
        elif hist.to_dict() != ref_dict:
            mismatches.append(f"{name}: histogram diverges from {names[0]} tier")
        rows[name] = {
            "seconds": round(best, 4),
            "speedup": round(scalar_s / best, 2) if best > 0 else float("inf"),
            "accesses_per_s": round(len(stream) / best, 1) if best > 0 else 0.0,
        }

    if mismatches:
        print("kernel parity FAILED:", file=sys.stderr)
        for m in mismatches:
            print(f"  {m}", file=sys.stderr)
        return 1

    fastest = min(rows, key=lambda n: rows[n]["seconds"])
    kernel_s = rows[fastest]["seconds"]
    speedup = rows[fastest]["speedup"]
    print(
        f"kernel parity OK: {args.program} ({len(stream)} lines), "
        f"n_sets={n_sets}, assoc sweep {assocs}, tiers {names}, "
        f"best of {reps} reps"
    )
    print(f"scalar simulator, {len(assocs)} passes: {scalar_s:.3f}s")
    for name in names:
        row = rows[name]
        print(
            f"  {name}: {row['seconds']:.4f}s ({row['speedup']:.1f}x, "
            f"{row['accesses_per_s']:.0f} accesses/s)"
        )

    failures: list[str] = []
    if args.min_speedup is not None and speedup < args.min_speedup:
        failures.append(
            f"fastest tier ({fastest}) speedup {speedup:.1f}x below "
            f"required {args.min_speedup:.1f}x"
        )
    failures += _check_compiled_wins(rows, args.require_compiled_wins)
    if args.baseline is not None:
        try:
            with open(args.baseline) as fh:
                baseline = json.load(fh)
        except (OSError, ValueError) as exc:
            print(f"error: cannot read baseline {args.baseline}: {exc}",
                  file=sys.stderr)
            return 1
        factor = args.regression_factor
        for name, row in rows.items():
            base = (baseline.get("backends") or {}).get(name)
            if not base:
                continue
            floor = factor * base["speedup"]
            if row["speedup"] < floor:
                failures.append(
                    f"{name} tier speedup {row['speedup']:.1f}x regressed "
                    f"below {floor:.1f}x ({factor:.2f} of the committed "
                    f"{base['speedup']:.1f}x)"
                )
    if failures:
        for f in failures:
            print(f"error: {f}", file=sys.stderr)
        return 1

    section = {
        "program": args.program,
        "stream_lines": int(len(stream)),
        "n_sets": n_sets,
        "assocs": assocs,
        "reps": reps,
        "scalar_seconds": round(scalar_s, 4),
        "backend": fastest,
        "backends": rows,
        "kernel_seconds": kernel_s,
        "speedup": speedup,
    }
    if args.bench is not None:
        try:
            with open(args.bench) as fh:
                bench = json.load(fh)
        except (OSError, ValueError):
            bench = {"schema": BENCH_SCHEMA}
        bench["kernel_bench"] = section
        atomic_write_text(args.bench, json.dumps(bench, indent=2, sort_keys=True))
        print(f"kernel_bench section written to {args.bench}")
    if args.out is not None:
        report = {"schema": KERNEL_BENCH_SCHEMA, "scale": args.scale, **section}
        atomic_write_text(args.out, json.dumps(report, indent=2, sort_keys=True))
        print(f"kernel-bench report written to {args.out}")
    return 0


#: schema tag of the standalone analysis-bench report (``--out``).
ANALYSIS_BENCH_SCHEMA = "repro.perf/analysis-bench.v1"


def _run_analysis_bench(args) -> int:
    import numpy as np

    from ..core.affinity import AffinityAnalysis
    from ..core.fastanalysis import coverage_from_analysis
    from ..core.layout import Granularity
    from ..core.optimizers import OptimizerConfig, _prepare_trace
    from ..core.trg import build_trg
    from ..experiments.pipeline import Lab
    from ..robust.atomic import atomic_write_text
    from .backends import resolve_backend

    try:
        # Scalar is the timed reference below; the tier loop covers the
        # faster backends (numpy always, compiled when installed).
        names = _select_backends(args.backend, include_scalar=False)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    lab = Lab(scale=args.scale)
    prepared = lab.program(args.program)
    config = OptimizerConfig()
    trace = _prepare_trace(
        prepared.test_bundle, Granularity(args.granularity), config
    )
    w_max = args.w_max
    window = args.window_blocks
    reps = max(1, args.reps)

    kernel_trace = trace
    if args.store_dir is not None:
        # Kernels read the trace back through the store's memmap, so the
        # bit-identity assertions below certify the zero-copy path too.
        from .store import TraceStore

        store = TraceStore(args.store_dir)
        kernel_trace = store.resolve(store.ref(trace))

    def timed(fn):
        """(best wall seconds over reps, last result)."""
        best, result = float("inf"), None
        for _ in range(reps):
            t0 = time.perf_counter()
            result = fn()
            best = min(best, time.perf_counter() - t0)
        return best, result

    # Scalar oracles: one-pass LRU-stack sweep + scalar TRG window walk.
    scalar_aff_s, scalar_analysis = timed(lambda: AffinityAnalysis(trace, w_max))
    scalar_trg_s, scalar_trg = timed(lambda: build_trg(trace, window_blocks=window))
    scalar_covg = coverage_from_analysis(scalar_analysis)
    scalar_s = scalar_aff_s + scalar_trg_s

    rows: dict[str, dict] = {}
    mismatches: list[str] = []
    for name in names:
        backend = resolve_backend(name)
        if name == "compiled":  # JIT warm-up outside the timed reps
            backend.affinity(kernel_trace, w_max=w_max)
            backend.trg(kernel_trace, window)
        aff_s, covg = timed(lambda: backend.affinity(kernel_trace, w_max=w_max))
        trg_s, trg = timed(lambda: backend.trg(kernel_trace, window))
        if scalar_covg != covg:
            mismatches.append(f"{name}: affinity coverage tables diverge")
        if scalar_trg.weights != trg.weights:
            mismatches.append(f"{name}: TRG edge weights diverge")
        if scalar_trg.nodes != trg.nodes:
            mismatches.append(f"{name}: TRG node orders diverge")
        total = aff_s + trg_s
        rows[name] = {
            "affinity_seconds": round(aff_s, 4),
            "trg_seconds": round(trg_s, 4),
            "seconds": round(total, 4),
            "affinity_speedup": round(scalar_aff_s / aff_s, 2)
            if aff_s > 0
            else float("inf"),
            "trg_speedup": round(scalar_trg_s / trg_s, 2)
            if trg_s > 0
            else float("inf"),
            "speedup": round(scalar_s / total, 2) if total > 0 else float("inf"),
        }
    if mismatches:
        print("analysis parity FAILED:", file=sys.stderr)
        for m in mismatches:
            print(f"  {m}", file=sys.stderr)
        return 1

    fastest = min(rows, key=lambda n: rows[n]["seconds"])
    kernel_s = rows[fastest]["seconds"]
    speedup = rows[fastest]["speedup"]
    n_syms = int(np.unique(trace).size)
    print(
        f"analysis parity OK: {args.program} ({len(trace)} accesses, "
        f"{n_syms} symbols, granularity={args.granularity}), "
        f"w_max={w_max}, window={window} blocks, tiers {names}, "
        f"best of {reps} reps"
    )
    print(
        f"scalar oracles: affinity {scalar_aff_s:.3f}s + trg "
        f"{scalar_trg_s:.3f}s = {scalar_s:.3f}s"
    )
    for name in names:
        row = rows[name]
        print(
            f"  {name}: affinity {row['affinity_seconds']:.3f}s "
            f"({row['affinity_speedup']:.2f}x), trg {row['trg_seconds']:.3f}s "
            f"({row['trg_speedup']:.2f}x), stage {row['seconds']:.3f}s "
            f"({row['speedup']:.2f}x)"
        )

    failures: list[str] = []
    if args.min_speedup is not None and speedup < args.min_speedup:
        failures.append(
            f"fastest tier ({fastest}) speedup {speedup:.2f}x below "
            f"required {args.min_speedup:.1f}x"
        )
    failures += _check_compiled_wins(rows, args.require_compiled_wins)
    if failures:
        for f in failures:
            print(f"error: {f}", file=sys.stderr)
        return 1

    best = rows[fastest]
    section = {
        "program": args.program,
        "granularity": args.granularity,
        "trace_accesses": int(len(trace)),
        "symbols": n_syms,
        "w_max": w_max,
        "window_blocks": window,
        "reps": reps,
        "scalar_seconds": round(scalar_s, 4),
        "backend": fastest,
        "backends": rows,
        "kernel_seconds": kernel_s,
        "affinity_speedup": best["affinity_speedup"],
        "trg_speedup": best["trg_speedup"],
        "speedup": speedup,
    }
    if args.bench is not None:
        try:
            with open(args.bench) as fh:
                bench = json.load(fh)
        except (OSError, ValueError):
            bench = {"schema": BENCH_SCHEMA}
        bench["analysis_bench"] = section
        atomic_write_text(args.bench, json.dumps(bench, indent=2, sort_keys=True))
        print(f"analysis_bench section written to {args.bench}")
    if args.out is not None:
        report = {"schema": ANALYSIS_BENCH_SCHEMA, "scale": args.scale, **section}
        atomic_write_text(args.out, json.dumps(report, indent=2, sort_keys=True))
        print(f"analysis-bench report written to {args.out}")
    return 0


def _run_store_bench(args) -> int:
    import pickle
    import tempfile

    from ..experiments.pipeline import BASELINE, Lab
    from ..robust.atomic import atomic_write_text
    from .parallel import CellPool, histogram_cells
    from .store import TraceStore

    programs = [p for p in args.programs.split(",") if p]
    n_sets = args.n_sets
    lab = Lab(scale=args.scale)
    streams = [lab.lines(p, BASELINE) for p in programs]

    # The pickled path: every cell carries its full stream.
    pickled_cells = [(s, n_sets) for s in streams]
    pickled_bytes = sum(len(pickle.dumps(c)) for c in pickled_cells)

    with tempfile.TemporaryDirectory() as tmp:
        store = TraceStore(args.store_dir or tmp)
        ref_cells = [(store.ref(s), n_sets) for s in streams]
        ref_bytes = sum(len(pickle.dumps(c)) for c in ref_cells)

        t0 = time.perf_counter()
        with CellPool(args.jobs) as pool:
            pickled_hists = histogram_cells(pickled_cells, pool=pool)
        pickled_s = time.perf_counter() - t0

        t0 = time.perf_counter()
        with CellPool(args.jobs, store=store) as pool:
            ref_hists = histogram_cells(ref_cells, pool=pool)
        ref_s = time.perf_counter() - t0

    mismatches = [
        programs[i]
        for i, (a, b) in enumerate(zip(pickled_hists, ref_hists))
        if a.to_dict() != b.to_dict()
    ]
    if mismatches:
        print(
            f"store transport parity FAILED: {', '.join(mismatches)}",
            file=sys.stderr,
        )
        return 1

    n = len(programs)
    ratio = pickled_bytes / ref_bytes if ref_bytes else float("inf")
    print(
        f"store transport parity OK: {n} histogram cells "
        f"(n_sets={n_sets}, jobs={args.jobs})"
    )
    print(
        f"bytes shipped per cell: pickled {pickled_bytes // n}, "
        f"store refs {ref_bytes // n} ({ratio:.1f}x smaller); "
        f"wall: pickled {pickled_s:.3f}s, store {ref_s:.3f}s"
    )
    if args.min_ratio is not None and ratio < args.min_ratio:
        print(
            f"error: shipped-bytes reduction {ratio:.1f}x below required "
            f"{args.min_ratio:.1f}x",
            file=sys.stderr,
        )
        return 1

    if args.bench is not None:
        try:
            with open(args.bench) as fh:
                bench = json.load(fh)
        except (OSError, ValueError):
            bench = {"schema": BENCH_SCHEMA}
        bench["store_bench"] = {
            "programs": programs,
            "n_sets": n_sets,
            "jobs": args.jobs,
            "cells": n,
            "bytes_shipped_pickled": pickled_bytes,
            "bytes_shipped_refs": ref_bytes,
            "ratio": round(ratio, 1),
            "pickled_seconds": round(pickled_s, 4),
            "store_seconds": round(ref_s, 4),
            "store_counters": store.counters(),
        }
        atomic_write_text(args.bench, json.dumps(bench, indent=2, sort_keys=True))
        print(f"store_bench section written to {args.bench}")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(prog="repro.perf", description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)

    cmp_p = sub.add_parser(
        "compare-journals", help="assert two run journals agree modulo timings"
    )
    cmp_p.add_argument("journal_a")
    cmp_p.add_argument("journal_b")
    cmp_p.add_argument(
        "--ignore-attempts",
        action="store_true",
        help="tolerate differing attempt counts (chaos runs redispatch "
        "killed/hung work, inflating attempts without changing outcomes)",
    )

    show_p = sub.add_parser("show-bench", help="summarize a BENCH_perf.json")
    show_p.add_argument("bench_path")

    kb_p = sub.add_parser(
        "kernel-bench",
        help="stack-distance kernel parity gate + assoc-sweep speedup",
    )
    kb_p.add_argument("--program", default="syn-gcc", help="suite program")
    kb_p.add_argument(
        "--scale", type=float, default=0.5, help="trace-budget multiplier"
    )
    kb_p.add_argument(
        "--n-sets",
        type=int,
        default=128,
        help="geometry family (default: the paper L1I's 128 sets)",
    )
    kb_p.add_argument(
        "--assocs",
        default="1,2,4,8,16",
        help="comma-separated associativities for the sweep",
    )
    kb_p.add_argument(
        "--backend",
        default=None,
        metavar="TIERS",
        help="comma-separated kernel tiers to measure (scalar, numpy, "
        "compiled), or 'all'; default: every available tier",
    )
    kb_p.add_argument(
        "--reps",
        type=int,
        default=3,
        help="repetitions per timing (the best is reported)",
    )
    kb_p.add_argument(
        "--min-speedup",
        type=float,
        default=None,
        help="fail (exit 1) if the fastest tier's speedup falls below this",
    )
    kb_p.add_argument(
        "--baseline",
        default=None,
        metavar="PATH",
        help="committed BENCH_kernel.json to gate against: each measured "
        "tier must reach --regression-factor of its committed speedup",
    )
    kb_p.add_argument(
        "--regression-factor",
        type=float,
        default=0.5,
        help="fraction of the baseline speedup each tier must reach "
        "(default 0.5 — catches collapses, tolerates CI timing noise)",
    )
    kb_p.add_argument(
        "--require-compiled-wins",
        action="store_true",
        help="fail (exit 1) if the compiled tier was measured and lost "
        "to numpy (otherwise a warning)",
    )
    kb_p.add_argument(
        "--bench",
        default=None,
        metavar="PATH",
        help="merge results into this BENCH_perf.json",
    )
    kb_p.add_argument(
        "--out",
        default=None,
        metavar="PATH",
        help="write a standalone BENCH_kernel.json report",
    )
    kb_p.add_argument(
        "--store-dir",
        default=None,
        metavar="DIR",
        help="route the kernel's input through a TraceStore memmap read "
        "(the parity gate then also certifies the zero-copy path)",
    )

    ab_p = sub.add_parser(
        "analysis-bench",
        help="locality-model kernel parity gate + analysis-stage speedup",
    )
    ab_p.add_argument("--program", default="syn-gcc", help="suite program")
    ab_p.add_argument(
        "--scale", type=float, default=0.5, help="trace-budget multiplier"
    )
    ab_p.add_argument(
        "--granularity",
        default="function",
        choices=["function", "bb"],
        help="symbol granularity of the analyzed trace",
    )
    ab_p.add_argument(
        "--w-max",
        type=int,
        default=20,
        help="affinity sweep upper bound (default: the paper's w_max)",
    )
    ab_p.add_argument(
        "--window-blocks",
        type=int,
        default=256,
        help="TRG reuse-window capacity in blocks",
    )
    ab_p.add_argument(
        "--reps",
        type=int,
        default=3,
        help="repetitions per timing (the best is reported)",
    )
    ab_p.add_argument(
        "--backend",
        default=None,
        metavar="TIERS",
        help="comma-separated kernel tiers to measure against the scalar "
        "oracles (numpy, compiled), or 'all'; default: every available "
        "non-scalar tier",
    )
    ab_p.add_argument(
        "--require-compiled-wins",
        action="store_true",
        help="fail (exit 1) if the compiled tier was measured and lost "
        "to numpy (otherwise a warning)",
    )
    ab_p.add_argument(
        "--min-speedup",
        type=float,
        default=None,
        help="fail (exit 1) if the fastest tier's combined speedup falls "
        "below this",
    )
    ab_p.add_argument(
        "--bench",
        default=None,
        metavar="PATH",
        help="merge results into this BENCH_perf.json",
    )
    ab_p.add_argument(
        "--out",
        default=None,
        metavar="PATH",
        help="write a standalone BENCH_analysis.json report",
    )
    ab_p.add_argument(
        "--store-dir",
        default=None,
        metavar="DIR",
        help="route the kernels' input trace through a TraceStore memmap "
        "read (the parity gate then also certifies the zero-copy path)",
    )

    sb_p = sub.add_parser(
        "store-bench",
        help="zero-copy transport gate: shipped bytes, pickled vs store refs",
    )
    sb_p.add_argument(
        "--programs",
        default="syn-gcc,syn-gobmk,syn-perlbench,syn-sjeng",
        help="comma-separated suite programs (one histogram cell each)",
    )
    sb_p.add_argument(
        "--scale", type=float, default=0.25, help="trace-budget multiplier"
    )
    sb_p.add_argument(
        "--n-sets",
        type=int,
        default=128,
        help="geometry family (default: the paper L1I's 128 sets)",
    )
    sb_p.add_argument(
        "--jobs", type=int, default=4, help="cell-pool worker processes"
    )
    sb_p.add_argument(
        "--min-ratio",
        type=float,
        default=None,
        help="fail (exit 1) if per-cell shipped bytes shrink by less than this",
    )
    sb_p.add_argument(
        "--store-dir",
        default=None,
        metavar="DIR",
        help="trace-store directory (default: a temporary one)",
    )
    sb_p.add_argument(
        "--bench",
        default=None,
        metavar="PATH",
        help="merge results into this BENCH_perf.json",
    )

    args = parser.parse_args(argv)

    if args.command == "compare-journals":
        ignore = ("attempts",) if args.ignore_attempts else ()
        diffs = compare_journal_outcomes(
            _load_journal(args.journal_a),
            _load_journal(args.journal_b),
            ignore=ignore,
        )
        if diffs:
            print(f"journals differ ({args.journal_a} vs {args.journal_b}):")
            for d in diffs:
                print(f"  {d}")
            return 1
        print("journals agree (modulo timing fields)")
        return 0

    if args.command == "show-bench":
        with open(args.bench_path) as fh:
            bench = json.load(fh)
        # Older reports (no "analysis"/"staticlint" section) remain readable.
        if bench.get("schema") not in (BENCH_SCHEMA, *COMPAT_SCHEMAS):
            print(f"error: not a {BENCH_SCHEMA} report", file=sys.stderr)
            return 2
        sim = bench.get("simulator", {})
        kernel = bench.get("kernel") or {}
        kernel_bench = bench.get("kernel_bench") or {}
        analysis = bench.get("analysis") or {}
        analysis_bench = bench.get("analysis_bench") or {}
        staticlint = bench.get("staticlint") or {}
        memo = bench.get("memo") or {}
        print(
            f"jobs={bench.get('jobs', '?')} scale={bench.get('scale', '?')} "
            f"wall={bench.get('wall_s', '?')}s"
        )
        print(
            f"simulator: {sim.get('accesses', 0)} accesses in "
            f"{sim.get('seconds', 0)}s ({sim.get('accesses_per_s', 0)}/s)"
        )
        if kernel.get("accesses"):
            if kernel.get("backend"):
                print(f"kernel backend: {kernel['backend']}")
            print(
                f"kernel: {kernel.get('accesses', 0)} accesses in "
                f"{kernel.get('seconds', 0)}s ({kernel.get('accesses_per_s', 0)}/s), "
                f"{kernel.get('passes', 0)} passes answering "
                f"{kernel.get('cells', 0)} cells "
                f"({kernel.get('cells_per_pass', 0.0)} cells/pass)"
            )
        if kernel_bench:
            print(
                f"kernel-bench: {kernel_bench.get('speedup', 0)}x over "
                f"{len(kernel_bench.get('assocs', []))} scalar passes "
                f"(n_sets={kernel_bench.get('n_sets', '?')}, "
                f"program={kernel_bench.get('program', '?')})"
            )
            for name, row in sorted(
                (kernel_bench.get("backends") or {}).items()
            ):
                print(
                    f"  {name}: {row.get('seconds', 0)}s "
                    f"({row.get('speedup', 0)}x, "
                    f"{row.get('accesses_per_s', 0)} accesses/s)"
                )
        if analysis.get("cells"):
            print(
                f"analysis: {analysis.get('accesses', 0)} accesses in "
                f"{analysis.get('seconds', 0)}s "
                f"({analysis.get('accesses_per_s', 0)}/s), "
                f"{analysis.get('passes', 0)} passes for "
                f"{analysis.get('cells', 0)} cells, "
                f"{analysis.get('memo_hits', 0)} memo hits"
            )
        if analysis_bench:
            print(
                f"analysis-bench: {analysis_bench.get('speedup', 0)}x "
                f"(affinity {analysis_bench.get('affinity_speedup', 0)}x, "
                f"trg {analysis_bench.get('trg_speedup', 0)}x, "
                f"program={analysis_bench.get('program', '?')})"
            )
            for name, row in sorted(
                (analysis_bench.get("backends") or {}).items()
            ):
                print(
                    f"  {name}: {row.get('seconds', 0)}s "
                    f"({row.get('speedup', 0)}x; affinity "
                    f"{row.get('affinity_speedup', 0)}x, "
                    f"trg {row.get('trg_speedup', 0)}x)"
                )
        if staticlint.get("diagnostics") or staticlint.get("certified"):
            print(
                f"staticlint: {staticlint.get('diagnostics', 0)} diagnostics in "
                f"{staticlint.get('seconds', 0)}s "
                f"({staticlint.get('diagnostics_per_s', 0)}/s), "
                f"{staticlint.get('certified', 0)} program(s) certified"
            )
            for row in staticlint.get("certify", []):
                print(
                    f"  certify {row.get('program', '?')}/{row.get('layout', '?')}: "
                    f"conflict_rho={row.get('conflict_rho', '?')} "
                    f"hotness_rho={row.get('hotness_rho', '?')}"
                )
        if memo:
            print(
                f"memo: {memo.get('hits', 0)} hits / {memo.get('misses', 0)} misses "
                f"(hit rate {memo.get('hit_rate', 0.0)})"
            )
            if memo.get("disk_failures") or memo.get("breaker_trips"):
                print(
                    f"  disk tier: {memo.get('disk_failures', 0)} failures, "
                    f"{memo.get('degraded', 0)} degraded ops, breaker "
                    f"{memo.get('breaker_trips', 0)} trip(s) / "
                    f"{memo.get('breaker_recoveries', 0)} recover(ies)"
                )
        store = bench.get("store") or {}
        if store:
            print(
                f"store: {store.get('bytes_shipped', 0)} bytes shipped / "
                f"{store.get('bytes_mapped', 0)} bytes mapped, "
                f"{store.get('pool_fanouts', 0)} fan-outs "
                f"({store.get('pool_reuses', 0)} pool reuses)"
            )
            backend = store.get("backend") or {}
            if backend:
                print(
                    f"  backend: {backend.get('puts', 0)} puts "
                    f"({backend.get('dup_puts', 0)} deduped), "
                    f"{backend.get('hits', 0)} hits / "
                    f"{backend.get('misses', 0)} misses, "
                    f"{backend.get('bytes_written', 0)} bytes written, "
                    f"{backend.get('corrupt_dropped', 0)} corrupt dropped"
                )
        store_bench = bench.get("store_bench") or {}
        if store_bench:
            print(
                f"store-bench: {store_bench.get('ratio', 0)}x smaller dispatches "
                f"({store_bench.get('bytes_shipped_pickled', 0)} pickled bytes -> "
                f"{store_bench.get('bytes_shipped_refs', 0)} ref bytes over "
                f"{store_bench.get('cells', 0)} cells, "
                f"jobs={store_bench.get('jobs', '?')})"
            )
        fleet = bench.get("fleet") or {}
        if fleet:
            print(
                f"fleet: {fleet.get('cells', 0)} co-run cells in "
                f"{fleet.get('seconds', 0)}s ({fleet.get('cells_per_s', 0)}/s) "
                f"from {fleet.get('curve_passes', 0)} curve passes + "
                f"{fleet.get('curve_memo_hits', 0)} memo hits "
                f"({fleet.get('cells_per_curve', 0.0)} cells/curve)"
            )
        fleet_bench = bench.get("fleet_bench") or {}
        if fleet_bench:
            print(
                f"fleet-bench: aware {fleet_bench.get('aware_total_misses', 0):.3e} "
                f"vs oblivious {fleet_bench.get('oblivious_total_misses', 0):.3e} "
                f"misses ({fleet_bench.get('aware_policy', '?')} vs "
                f"{fleet_bench.get('oblivious_policy', '?')}, "
                f"{fleet_bench.get('instances', 0)} instances on "
                f"{fleet_bench.get('sockets', 0)} sockets, "
                f"{fleet_bench.get('matrix_cells', 0)} matrix cells)"
            )
        resilience = bench.get("resilience") or {}
        if resilience:
            print(
                f"resilience: {resilience.get('workers_spawned', 0)} workers "
                f"({resilience.get('workers_replaced', 0)} replaced), "
                f"{resilience.get('worker_crashes', 0)} crash(es), "
                f"{resilience.get('worker_hangs', 0)} hang(s), "
                f"{resilience.get('redispatches', 0)} redispatch(es)"
                + (", PARTIAL RESULTS" if resilience.get("partial") else "")
            )
        for stage, seconds in sorted(bench.get("stages", {}).items()):
            print(f"  {stage}: {seconds}s")
        return 0

    if args.command == "kernel-bench":
        return _run_kernel_bench(args)

    if args.command == "analysis-bench":
        return _run_analysis_bench(args)

    if args.command == "store-bench":
        return _run_store_bench(args)

    return 2  # pragma: no cover


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
