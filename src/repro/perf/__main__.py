"""``python -m repro.perf`` — perf tooling CLI.

Subcommands:

``compare-journals A B``
    Assert two run journals describe the same suite outcomes, ignoring
    timing fields (``elapsed_s``, ``finished_at``, ``timings``).  Exit 0
    on parity, 1 with a difference listing otherwise.  This is the
    parity gate of the CI benchmark smoke job: a ``--jobs N`` run must
    journal exactly what the serial run journals.

``show-bench PATH``
    Pretty-print the headline numbers of a ``BENCH_perf.json``.
"""

from __future__ import annotations

import argparse
import json
import sys

from .telemetry import BENCH_SCHEMA, compare_journal_outcomes


def _load_journal(path: str) -> list[dict]:
    from ..robust.journal import RunJournal

    return [json.loads(e.to_json()) for e in RunJournal(path).entries()]


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(prog="repro.perf", description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)

    cmp_p = sub.add_parser(
        "compare-journals", help="assert two run journals agree modulo timings"
    )
    cmp_p.add_argument("journal_a")
    cmp_p.add_argument("journal_b")

    show_p = sub.add_parser("show-bench", help="summarize a BENCH_perf.json")
    show_p.add_argument("bench_path")

    args = parser.parse_args(argv)

    if args.command == "compare-journals":
        diffs = compare_journal_outcomes(
            _load_journal(args.journal_a), _load_journal(args.journal_b)
        )
        if diffs:
            print(f"journals differ ({args.journal_a} vs {args.journal_b}):")
            for d in diffs:
                print(f"  {d}")
            return 1
        print("journals agree (modulo timing fields)")
        return 0

    if args.command == "show-bench":
        with open(args.bench_path) as fh:
            bench = json.load(fh)
        if bench.get("schema") != BENCH_SCHEMA:
            print(f"error: not a {BENCH_SCHEMA} report", file=sys.stderr)
            return 2
        sim = bench.get("simulator", {})
        memo = bench.get("memo") or {}
        print(f"jobs={bench['jobs']} scale={bench['scale']} wall={bench['wall_s']}s")
        print(
            f"simulator: {sim.get('accesses', 0)} accesses in "
            f"{sim.get('seconds', 0)}s ({sim.get('accesses_per_s', 0)}/s)"
        )
        if memo:
            print(
                f"memo: {memo.get('hits', 0)} hits / {memo.get('misses', 0)} misses "
                f"(hit rate {memo.get('hit_rate', 0.0)})"
            )
        for stage, seconds in sorted(bench.get("stages", {}).items()):
            print(f"  {stage}: {seconds}s")
        return 0

    return 2  # pragma: no cover


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
